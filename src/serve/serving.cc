#include "src/serve/serving.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace ktx {

namespace {

// FinishReasonName returns views of string literals, so .data() is a stable
// NUL-terminated string the trace recorder may keep by pointer.
const char* FinishReasonCstr(FinishReason reason) { return FinishReasonName(reason).data(); }

// Remaining deadline slack at retirement, in microseconds (negative = late;
// 0 for deadline-free requests). Annotated on the request's terminal event.
std::int64_t SlackMicros(double deadline_s, double total_s) {
  if (deadline_s <= 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>((deadline_s - total_s) * 1e6);
}

}  // namespace

std::string_view FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kEos:
      return "eos";
    case FinishReason::kLength:
      return "length";
    case FinishReason::kKvExhausted:
      return "kv_exhausted";
    case FinishReason::kRejected:
      return "rejected";
    case FinishReason::kDeadline:
      return "deadline";
    case FinishReason::kBackendError:
      return "backend_error";
  }
  return "unknown";
}

std::string_view SchedulePolicyName(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "fifo";
    case SchedulePolicy::kSlack:
      return "slack";
    case SchedulePolicy::kSlackPreempt:
      return "slack_preempt";
  }
  return "unknown";
}

ServingLoop::ServingLoop(HybridEngine* engine, ServingOptions options)
    : engine_(engine), options_(options) {
  KTX_CHECK(engine_ != nullptr);
  KTX_CHECK_GE(options_.max_concurrent, 1);
  KTX_CHECK_GE(options_.max_queue, 1);
}

ServingLoop::ServingLoop(HybridEngine* engine, int max_concurrent, bool batched_decode)
    : ServingLoop(engine, ServingOptions{max_concurrent, batched_decode}) {}

Status ServingLoop::ValidateRequest(const GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return InvalidArgumentError("empty prompt");
  }
  if (request.max_new_tokens < 1) {
    return InvalidArgumentError("max_new_tokens must be >= 1, got " +
                                std::to_string(request.max_new_tokens));
  }
  // A negative deadline is a caller bug, not a "no deadline" spelling: every
  // deadline check gates on > 0, so -1 would silently disable the SLO the
  // caller thought they set. Only 0 means "no deadline".
  if (request.deadline_s < 0.0) {
    return InvalidArgumentError("deadline_s must be >= 0 (0 disables), got " +
                                std::to_string(request.deadline_s));
  }
  if (request.priority < 0 || request.priority > kMaxRequestPriority) {
    return InvalidArgumentError("priority " + std::to_string(request.priority) +
                                " outside [0, " + std::to_string(kMaxRequestPriority) + "]");
  }
  const std::int64_t vocab = engine_->config().vocab;
  for (std::size_t i = 0; i < request.prompt.size(); ++i) {
    if (request.prompt[i] < 0 || request.prompt[i] >= vocab) {
      return InvalidArgumentError("prompt token " + std::to_string(request.prompt[i]) +
                                  " at index " + std::to_string(i) + " outside vocab [0, " +
                                  std::to_string(vocab) + ")");
    }
  }
  const std::int64_t max_seq = engine_->config().max_seq;
  if (static_cast<std::int64_t>(request.prompt.size()) > max_seq) {
    return InvalidArgumentError("prompt of " + std::to_string(request.prompt.size()) +
                                " tokens exceeds the kv capacity max_seq=" +
                                std::to_string(max_seq));
  }
  // A request that cannot reach max_new_tokens within the session's KV bound
  // is doomed at submit time: reject it here (kRejected, no work spent)
  // instead of prefilling the prompt and retiring it kv_exhausted mid-decode.
  if (static_cast<std::int64_t>(request.prompt.size()) + request.max_new_tokens > max_seq) {
    return InvalidArgumentError(
        "prompt of " + std::to_string(request.prompt.size()) + " tokens + max_new_tokens=" +
        std::to_string(request.max_new_tokens) + " cannot fit the kv capacity max_seq=" +
        std::to_string(max_seq));
  }
  return OkStatus();
}

void ServingLoop::Reject(std::uint64_t id, const GenerationRequest& request, Status status,
                         FinishReason reason, double elapsed_s) {
  GenerationResult result;
  result.id = id;
  result.ok = false;
  result.status = std::move(status);
  result.finish_reason = reason;
  result.prompt_tokens = static_cast<std::int64_t>(request.prompt.size());
  result.queue_seconds = elapsed_s;
  result.total_seconds = elapsed_s;
  completed_.push_back(std::move(result));
  ++stats_.requests_rejected;
  trace::EmitAsyncEndStr("request", "request", id, "slack_us", 0,
                         FinishReasonCstr(reason));
}

void ServingLoop::ExpireQueued(Pending&& pending, double waited_s) {
  // An SLO miss in the queue is NOT an admission rejection: it counts
  // requests_deadline_expired only. Nor was the request ever admitted, so
  // requests_completed / requests_failed (post-admission accounting) are
  // untouched.
  GenerationResult result;
  result.id = pending.id;
  result.ok = false;
  result.status =
      DeadlineExceededError("deadline of " + std::to_string(pending.request.deadline_s) +
                            "s expired after " + std::to_string(waited_s) +
                            "s in the admission queue");
  result.finish_reason = FinishReason::kDeadline;
  result.prompt_tokens = static_cast<std::int64_t>(pending.request.prompt.size());
  result.preemptions = pending.preemptions;
  result.queue_seconds = waited_s;
  result.total_seconds = waited_s;
  completed_.push_back(std::move(result));
  ++stats_.requests_deadline_expired;
  trace::EmitAsyncEnd("request", "queued", pending.id);
  trace::EmitAsyncEndStr("request", "request", pending.id, "slack_us",
                         SlackMicros(pending.request.deadline_s, waited_s),
                         FinishReasonCstr(FinishReason::kDeadline));
}

void ServingLoop::SweepQueueDeadlines() {
  for (std::size_t i = 0; i < queue_.size();) {
    const double waited_s = queue_[i].submitted.ElapsedSeconds();
    if (queue_[i].request.deadline_s > 0.0 && waited_s > queue_[i].request.deadline_s) {
      Pending expired = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      ExpireQueued(std::move(expired), waited_s);
      continue;
    }
    ++i;
  }
  for (std::size_t i = 0; i < preempted_.size();) {
    Active& row = preempted_[i].row;
    if (row.request.deadline_s > 0.0 &&
        row.clock.ElapsedSeconds() > row.request.deadline_s) {
      Preempted expired = std::move(preempted_[i]);
      preempted_.erase(preempted_.begin() + static_cast<std::ptrdiff_t>(i));
      // Was admitted once: the usual post-admission failure accounting.
      FailRow(std::move(expired.row), FinishReason::kDeadline,
              DeadlineExceededError(
                  "deadline of " + std::to_string(expired.row.request.deadline_s) +
                  "s expired while preempted after " +
                  std::to_string(expired.row.result.tokens.size()) + " tokens"));
      continue;
    }
    ++i;
  }
}

std::uint64_t ServingLoop::Submit(GenerationRequest request) {
  const std::uint64_t id = next_id_++;
  // Every id opens a request track at submit — rejected requests show as
  // short submit->reject spans, admitted ones run to RetireRow.
  trace::EmitAsyncBegin("request", "request", id, "prompt_tokens",
                        static_cast<std::int64_t>(request.prompt.size()));
  Status valid = ValidateRequest(request);
  if (valid.ok() && static_cast<int>(queue_.size()) >= options_.max_queue) {
    // The starvation fix: a queue full of expired requests must not reject a
    // live one — sweep expiries out before judging capacity.
    SweepQueueDeadlines();
  }
  if (valid.ok() && static_cast<int>(queue_.size()) >= options_.max_queue) {
    valid = ResourceExhaustedError("admission queue full (" + std::to_string(queue_.size()) +
                                   " of max_queue=" + std::to_string(options_.max_queue) + ")");
  }
  if (!valid.ok()) {
    Reject(id, request, valid.WithContext("submit"), FinishReason::kRejected,
           /*elapsed_s=*/0.0);
    return id;
  }
  Pending pending;
  pending.id = id;
  pending.request = std::move(request);
  pending.submitted.Reset();
  queue_.push_back(std::move(pending));
  trace::EmitAsyncBegin("request", "queued", id);
  return id;
}

void ServingLoop::NoteFirstToken(Active* active) {
  const double now = active->clock.ElapsedSeconds();
  active->result.time_to_first_token_s = now;
  active->last_emit_s = now;
  stats_.ttft_s.Record(now);
}

void ServingLoop::NoteDecodedToken(Active* active) {
  const double now = active->clock.ElapsedSeconds();
  stats_.tbt_s.Record(now - active->last_emit_s);
  active->last_emit_s = now;
}

// --- scheduling --------------------------------------------------------------

void ServingLoop::NoteChunkSeconds(double s) {
  ema_chunk_s_ = ema_chunk_s_ <= 0.0 ? s : 0.8 * ema_chunk_s_ + 0.2 * s;
}

void ServingLoop::NoteSweepSeconds(double s) {
  ema_sweep_s_ = ema_sweep_s_ <= 0.0 ? s : 0.8 * ema_sweep_s_ + 0.2 * s;
}

double ServingLoop::EstimateQueuedSeconds(const GenerationRequest& request) const {
  const std::int64_t chunk = engine_->options().prefill_chunk;
  const auto prompt = static_cast<std::int64_t>(request.prompt.size());
  const std::int64_t chunks = (prompt + chunk - 1) / chunk;
  return static_cast<double>(chunks) * ema_chunk_s_ +
         static_cast<double>(request.max_new_tokens) * ema_sweep_s_;
}

ServingLoop::SchedKey ServingLoop::MakeKey(int priority, double deadline_s, double elapsed_s,
                                           double estimate_s, std::uint64_t id) const {
  SchedKey key;
  key.priority = priority;
  key.id = id;
  if (deadline_s <= 0.0) {
    key.slack_s = std::numeric_limits<double>::infinity();
  } else {
    key.slack_s = deadline_s - elapsed_s - estimate_s;
    key.infeasible = key.slack_s < 0.0;
  }
  return key;
}

ServingLoop::SchedKey ServingLoop::KeyOf(const Pending& pending) const {
  return MakeKey(pending.request.priority, pending.request.deadline_s,
                 pending.submitted.ElapsedSeconds(), EstimateQueuedSeconds(pending.request),
                 pending.id);
}

ServingLoop::SchedKey ServingLoop::KeyOf(const Preempted& preempted) const {
  const Active& row = preempted.row;
  const auto remaining = static_cast<double>(
      row.request.max_new_tokens - static_cast<int>(row.result.tokens.size()));
  return MakeKey(row.request.priority, row.request.deadline_s, row.clock.ElapsedSeconds(),
                 remaining * ema_sweep_s_, row.id);
}

double ServingLoop::EstimateActiveSeconds(const Active& row) const {
  if (row.cursor.valid() && !row.cursor.done()) {
    const std::int64_t chunk = engine_->options().prefill_chunk;
    const std::int64_t chunks = (row.cursor.remaining_tokens() + chunk - 1) / chunk;
    return static_cast<double>(chunks) * ema_chunk_s_ +
           static_cast<double>(row.request.max_new_tokens) * ema_sweep_s_;
  }
  return static_cast<double>(row.request.max_new_tokens -
                             static_cast<int>(row.result.tokens.size())) *
         ema_sweep_s_;
}

ServingLoop::SchedKey ServingLoop::KeyOf(const Active& row) const {
  return MakeKey(row.request.priority, row.request.deadline_s, row.clock.ElapsedSeconds(),
                 EstimateActiveSeconds(row), row.id);
}

bool ServingLoop::ScheduledBefore(const SchedKey& a, const SchedKey& b) const {
  if (options_.policy == SchedulePolicy::kFifo) {
    return a.id < b.id;
  }
  if (a.priority != b.priority) {
    return a.priority > b.priority;  // higher class first
  }
  // Within a class, requests whose deadline is already estimated unreachable
  // sort last: spending capacity on them starves feasible requests, and they
  // expire more cheaply in the queue than mid-decode. The estimate only
  // orders; the deadline sweeps decide actual expiry.
  if (a.infeasible != b.infeasible) {
    return b.infeasible;
  }
  if (a.slack_s != b.slack_s) {
    return a.slack_s < b.slack_s;  // least slack first (EDF-like)
  }
  return a.id < b.id;  // stable: deadline-free workloads schedule FIFO
}

int ServingLoop::BestQueuedIndex() const {
  if (queue_.empty()) {
    return -1;
  }
  std::size_t best = 0;
  SchedKey best_key = KeyOf(queue_[0]);
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const SchedKey key = KeyOf(queue_[i]);
    if (ScheduledBefore(key, best_key)) {
      best = i;
      best_key = key;
    }
  }
  return static_cast<int>(best);
}

int ServingLoop::BestPreemptedIndex() const {
  if (preempted_.empty()) {
    return -1;
  }
  std::size_t best = 0;
  SchedKey best_key = KeyOf(preempted_[0]);
  for (std::size_t i = 1; i < preempted_.size(); ++i) {
    const SchedKey key = KeyOf(preempted_[i]);
    if (ScheduledBefore(key, best_key)) {
      best = i;
      best_key = key;
    }
  }
  return static_cast<int>(best);
}

// --- admission ---------------------------------------------------------------

void ServingLoop::AdmitWaiting() {
  while (static_cast<int>(prefilling_.size() + active_.size()) < options_.max_concurrent) {
    const int qi = BestQueuedIndex();
    const int pi = BestPreemptedIndex();
    if (qi < 0 && pi < 0) {
      break;
    }
    bool take_preempted;
    if (qi < 0) {
      take_preempted = true;
    } else if (pi < 0) {
      take_preempted = false;
    } else {
      take_preempted = ScheduledBefore(KeyOf(preempted_[static_cast<std::size_t>(pi)]),
                                       KeyOf(queue_[static_cast<std::size_t>(qi)]));
    }
    if (take_preempted) {
      if (!ResumePreempted(static_cast<std::size_t>(pi))) {
        break;  // pool pressure: retry after retirements free blocks
      }
    } else {
      if (!AdmitPending(static_cast<std::size_t>(qi))) {
        break;
      }
    }
  }
}

bool ServingLoop::AdmitPending(std::size_t index) {
  const bool interleaved = options_.prefill_budget_tokens > 0;
  Pending pending = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  const double waited_s = pending.submitted.ElapsedSeconds();
  if (pending.request.deadline_s > 0.0 && waited_s > pending.request.deadline_s) {
    ExpireQueued(std::move(pending), waited_s);
    return true;
  }
  trace::EmitAsyncEnd("request", "queued", pending.id);
  Active active(pending.id, std::move(pending.request));
  active.result.preemptions = pending.preemptions;
  if (free_sessions_.empty()) {
    auto session = engine_->TryCreateSession();
    if (!session.ok()) {
      Reject(active.id, active.request, session.status().WithContext("admission"),
             FinishReason::kRejected, waited_s);
      return true;
    }
    active.session = *session;
  } else {
    active.session = free_sessions_.back();
    free_sessions_.pop_back();
    engine_->Reset(active.session);
  }
  active.result.id = active.id;
  active.result.prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
  active.clock = pending.submitted;  // metrics are measured from Submit
  active.result.queue_seconds = waited_s;
  // A row counts toward peak_concurrency once it truly holds a slot —
  // including an immediate admission failure, but NOT a pool-pressure
  // re-queue (the request goes back unadmitted).
  const auto note_slot = [this] {
    stats_.peak_concurrency =
        std::max(stats_.peak_concurrency,
                 static_cast<int>(prefilling_.size() + active_.size()) + 1);
  };
  // Paged engines draw KV from one shared pool: a block-reservation failure
  // while other requests are in flight is back-pressure, not doom — their
  // retirements return blocks. Such a request re-queues at the head and this
  // sweep stops admitting (the scheduler re-picks it by key next sweep); it
  // only fails kv_exhausted when nothing in flight could free blocks for it.
  const auto pool_pressure = [this](const Status& status) {
    return engine_->kv_paged() &&
           status.code() == StatusCode::kResourceExhausted &&
           !(prefilling_.empty() && active_.empty());
  };
  const auto requeue = [this](Active&& row) {
    free_sessions_.push_back(row.session);
    Pending back;
    back.id = row.id;
    back.request = std::move(row.request);
    back.submitted = row.clock;  // still running since Submit
    back.preemptions = row.result.preemptions;
    TracePhase(&row, "queued");  // closes an open prefill span, re-opens queued
    queue_.push_front(std::move(back));
  };

  if (interleaved) {
    // Stall-free admission: validate everything (KV headroom for the whole
    // prompt included) but run no prefill work inside the admission sweep.
    auto cursor = engine_->StartPrefill(active.session, active.request.prompt);
    if (!cursor.ok()) {
      if (pool_pressure(cursor.status())) {
        requeue(std::move(active));
        return false;
      }
      note_slot();
      const FinishReason reason =
          cursor.status().code() == StatusCode::kResourceExhausted
              ? FinishReason::kKvExhausted
              : FinishReason::kBackendError;
      FailRow(std::move(active), reason, cursor.status().WithContext("admission"));
      return true;
    }
    note_slot();
    active.cursor = std::move(*cursor);
    TracePhase(&active, "prefill");
    prefilling_.push_back(std::move(active));
    return true;
  }

  // Synchronous admission (prefill_budget_tokens == 0): the legacy path —
  // the whole prompt runs here, stalling this sweep's decodes behind it.
  TracePhase(&active, "prefill");
  auto logits = engine_->TryPrefill(active.session, active.request.prompt);
  if (!logits.ok()) {
    if (pool_pressure(logits.status())) {
      requeue(std::move(active));
      return false;
    }
    note_slot();
    // The prompt itself was validated at Submit; what's left is capacity
    // (a prior request grew this session? impossible after Reset — keep the
    // mapping anyway) or an injected backend fault.
    const FinishReason reason = logits.status().code() == StatusCode::kResourceExhausted
                                    ? FinishReason::kKvExhausted
                                    : FinishReason::kBackendError;
    FailRow(std::move(active), reason, logits.status().WithContext("admission"));
    return true;
  }
  note_slot();
  const auto prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
  const std::int64_t chunk = engine_->options().prefill_chunk;
  stats_.prefill_tokens += prompt_tokens;
  stats_.prefill_chunks += (prompt_tokens + chunk - 1) / chunk;
  active.last_token = active.sampler.Sample(*logits);
  NoteFirstToken(&active);
  TracePhase(&active, "decode");
  active_.push_back(std::move(active));
  return true;
}

bool ServingLoop::ResumePreempted(std::size_t index) {
  Preempted preempted = std::move(preempted_[index]);
  preempted_.erase(preempted_.begin() + static_cast<std::ptrdiff_t>(index));
  int session = -1;
  if (free_sessions_.empty()) {
    auto created = engine_->TryCreateSession();
    if (!created.ok()) {
      if (created.status().code() == StatusCode::kResourceExhausted &&
          !(prefilling_.empty() && active_.empty())) {
        preempted_.push_front(std::move(preempted));
        return false;  // a retirement will pool its session
      }
      FailRow(std::move(preempted.row), FinishReason::kBackendError,
              created.status().WithContext("resume"));
      return true;
    }
    session = *created;
  } else {
    session = free_sessions_.back();
    free_sessions_.pop_back();
    engine_->Reset(session);
  }
  // Bit-exact restore: adopt whatever run of the victim's own blocks is still
  // in the prefix cache (the same physical rows it was evicted with), then
  // copy the rest from the blob. Nothing is recomputed, so the resumed
  // stream continues exactly as the uninterrupted one would.
  auto adopted = engine_->TryRestoreKv(session, preempted.history, preempted.kv_blob);
  if (!adopted.ok()) {
    free_sessions_.push_back(session);
    if (adopted.status().code() == StatusCode::kResourceExhausted &&
        !(prefilling_.empty() && active_.empty())) {
      preempted_.push_front(std::move(preempted));
      return false;  // pool pressure: retry after retirements free blocks
    }
    const FinishReason reason = adopted.status().code() == StatusCode::kResourceExhausted
                                    ? FinishReason::kKvExhausted
                                    : FinishReason::kBackendError;
    FailRow(std::move(preempted.row), reason, adopted.status().WithContext("resume"));
    return true;
  }
  preempted.row.session = session;
  ++stats_.preempt_resumes;
  stats_.preempt_tokens_preserved += static_cast<std::int64_t>(preempted.history.size());
  stats_.preempt_tokens_adopted += *adopted;
  stats_.peak_concurrency =
      std::max(stats_.peak_concurrency,
               static_cast<int>(prefilling_.size() + active_.size()) + 1);
  // Re-joins mid-decode: its pending sampled token is consumed and fed back
  // on this very sweep, like any decoding row.
  TracePhase(&preempted.row, "decode");  // closes the preempted span
  active_.push_back(std::move(preempted.row));
  return true;
}

// --- preemption --------------------------------------------------------------

void ServingLoop::MaybePreempt() {
  if (options_.policy != SchedulePolicy::kSlackPreempt) {
    return;
  }
  for (int round = 0; round < options_.max_concurrent; ++round) {
    if (static_cast<int>(prefilling_.size() + active_.size()) < options_.max_concurrent) {
      break;  // a free slot means admission, not preemption
    }
    const int qi = BestQueuedIndex();
    const int pi = BestPreemptedIndex();
    if (qi < 0 && pi < 0) {
      break;
    }
    SchedKey waiting;
    if (qi < 0) {
      waiting = KeyOf(preempted_[static_cast<std::size_t>(pi)]);
    } else if (pi < 0) {
      waiting = KeyOf(queue_[static_cast<std::size_t>(qi)]);
    } else {
      const SchedKey a = KeyOf(preempted_[static_cast<std::size_t>(pi)]);
      const SchedKey b = KeyOf(queue_[static_cast<std::size_t>(qi)]);
      waiting = ScheduledBefore(a, b) ? a : b;
    }
    // Never evict running work for a request already estimated to miss its
    // deadline: the eviction wastes the victim's sunk KV work and the
    // usurper's tokens earn no goodput anyway.
    if (waiting.infeasible) {
      break;
    }
    // Eviction is a last resort: if any running row is expected to retire
    // within the waiting request's slack, a slot will free in time and the
    // victim's sunk work is kept. Infinite slack (a deadline-free VIP) means
    // pure priority preemption — there is no urgency estimate to wait on.
    if (waiting.slack_s != std::numeric_limits<double>::infinity()) {
      double soonest_s = std::numeric_limits<double>::infinity();
      for (const Active& row : prefilling_) {
        soonest_s = std::min(soonest_s, EstimateActiveSeconds(row));
      }
      for (const Active& row : active_) {
        soonest_s = std::min(soonest_s, EstimateActiveSeconds(row));
      }
      if (waiting.slack_s >= soonest_s) {
        break;
      }
    }
    // Victim: the LAST-scheduled running row — lowest priority class, most
    // slack (or already infeasible, whose eviction costs the least goodput).
    bool victim_prefilling = false;
    std::size_t victim = 0;
    bool have_victim = false;
    SchedKey victim_key;
    const auto consider = [&](const SchedKey& key, bool is_prefilling, std::size_t i) {
      if (!have_victim || ScheduledBefore(victim_key, key)) {
        victim_key = key;
        victim = i;
        victim_prefilling = is_prefilling;
        have_victim = true;
      }
    };
    for (std::size_t i = 0; i < prefilling_.size(); ++i) {
      consider(KeyOf(prefilling_[i]), true, i);
    }
    for (std::size_t i = 0; i < active_.size(); ++i) {
      consider(KeyOf(active_[i]), false, i);
    }
    // Strictly lower priority only: equal-priority preemption would thrash
    // (the resumed victim would immediately justify preempting its usurper).
    if (!have_victim || victim_key.priority >= waiting.priority) {
      break;
    }
    if (victim_prefilling) {
      PreemptPrefilling(victim);
    } else {
      PreemptDecoding(victim);
    }
    AdmitWaiting();  // the freed slot goes to the best waiting request
  }
}

void ServingLoop::PreemptPrefilling(std::size_t index) {
  Active row = std::move(prefilling_[index]);
  prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(index));
  // Nothing sampled yet, so dropping the partial prompt KV is bit-safe: a
  // re-prefill runs the same engine-fixed chunk grid, and the full prompt
  // blocks already registered in the prefix cache usually make it a block
  // adoption. The row goes back to pending with its Submit clock intact.
  engine_->Reset(row.session);
  free_sessions_.push_back(row.session);
  ++stats_.preemptions;
  Pending back;
  back.id = row.id;
  back.request = std::move(row.request);
  back.submitted = row.clock;
  back.preemptions = row.result.preemptions + 1;
  TracePhase(&row, "queued");  // closes the prefill span
  queue_.push_front(std::move(back));
}

void ServingLoop::PreemptDecoding(std::size_t index) {
  Active row = std::move(active_[index]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  // The KV the session holds covers the prompt plus every decoded token fed
  // back; the pending sampled token (last_token) has produced no KV yet and
  // travels in the row itself.
  std::vector<int> history = row.request.prompt;
  history.insert(history.end(), row.result.tokens.begin(), row.result.tokens.end());
  auto blob = engine_->TrySaveKv(row.session);
  if (!blob.ok()) {
    FailRow(std::move(row), FinishReason::kBackendError,
            blob.status().WithContext("preempt"));
    return;
  }
  // Re-register the victim's full blocks under its token history BEFORE the
  // session resets: the blocks stay resident as evictable cache entries, and
  // resume adopts the very same physical bits instead of copying them back.
  engine_->RegisterSessionPrefix(row.session, history);
  engine_->Reset(row.session);
  free_sessions_.push_back(row.session);
  row.session = -1;
  ++stats_.preemptions;
  ++row.result.preemptions;
  TracePhase(&row, "preempted");  // closes the decode span
  Preempted preempted(std::move(row));
  preempted.kv_blob = std::move(*blob);
  preempted.history = std::move(history);
  preempted_.push_back(std::move(preempted));
}

// --- prefill / decode --------------------------------------------------------

void ServingLoop::AdvancePrefill() {
  trace::ScopedSpan sweep_span("serving", "prefill_sweep");
  std::int64_t spent = 0;
  // Best-scheduled request first, one engine chunk at a time (kFifo: oldest).
  // The budget is checked before each chunk: a sweep with prefill work always
  // advances at least one chunk, and overshoots by < prefill_chunk tokens.
  while (!prefilling_.empty() && spent < options_.prefill_budget_tokens) {
    std::size_t best = 0;
    if (prefilling_.size() > 1) {
      SchedKey best_key = KeyOf(prefilling_[0]);
      for (std::size_t i = 1; i < prefilling_.size(); ++i) {
        const SchedKey key = KeyOf(prefilling_[i]);
        if (ScheduledBefore(key, best_key)) {
          best = i;
          best_key = key;
        }
      }
    }
    Active& row = prefilling_[best];
    if (row.request.deadline_s > 0.0 &&
        row.clock.ElapsedSeconds() > row.request.deadline_s) {
      Active failed = std::move(row);
      prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(best));
      FailRow(std::move(failed), FinishReason::kDeadline,
              DeadlineExceededError(
                  "deadline of " + std::to_string(failed.request.deadline_s) +
                  "s expired after " + std::to_string(failed.cursor.processed_tokens()) +
                  " of " + std::to_string(failed.cursor.total_tokens()) +
                  " prompt tokens prefilled"));
      continue;
    }
    Stopwatch chunk_clock;
    chunk_clock.Reset();
    auto advanced = engine_->TryPrefillNext(&row.cursor);
    if (!advanced.ok()) {
      const FinishReason reason =
          advanced.status().code() == StatusCode::kResourceExhausted
              ? FinishReason::kKvExhausted
              : FinishReason::kBackendError;
      Active failed = std::move(row);
      prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(best));
      FailRow(std::move(failed), reason,
              advanced.status().WithContext("request " + std::to_string(failed.id)));
      continue;
    }
    NoteChunkSeconds(chunk_clock.ElapsedSeconds());
    spent += *advanced;
    stats_.prefill_tokens += *advanced;
    ++stats_.prefill_chunks;
    sweep_span.set_arg("tokens", spent);
    if (row.cursor.done()) {
      row.last_token = row.sampler.Sample(row.cursor.logits());
      NoteFirstToken(&row);
      Active done = std::move(row);
      prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(best));
      TracePhase(&done, "decode");
      active_.push_back(std::move(done));
    }
  }
}

bool ServingLoop::ConsumeToken(Active* active) {
  if (active->request.eos_token >= 0 && active->last_token == active->request.eos_token) {
    active->result.stopped_at_eos = true;
    active->result.finish_reason = FinishReason::kEos;
    return true;
  }
  active->result.tokens.push_back(active->last_token);
  ++stats_.tokens_generated;
  // Checked only after the push: Submit guarantees max_new_tokens >= 1, so a
  // request for N tokens returns exactly N (the old pre-validation code let
  // max_new_tokens <= 0 return one token).
  if (static_cast<int>(active->result.tokens.size()) >= active->request.max_new_tokens) {
    active->result.finish_reason = FinishReason::kLength;
    return true;
  }
  return false;
}

void ServingLoop::TracePhase(Active* row, const char* phase) {
  if (trace::IsEnabled()) {
    if (row->trace_phase != nullptr) {
      trace::EmitAsyncEnd("request", row->trace_phase, row->id);
    }
    if (phase != nullptr) {
      trace::EmitAsyncBegin("request", phase, row->id);
    }
  }
  row->trace_phase = phase;
}

void ServingLoop::RetireRow(Active&& active) {
  active.result.ok = active.result.status.ok();
  active.result.stopped_at_eos = active.result.finish_reason == FinishReason::kEos;
  active.result.total_seconds = active.clock.ElapsedSeconds();
  TracePhase(&active, nullptr);
  trace::EmitAsyncEndStr(
      "request", "request", active.id, "slack_us",
      SlackMicros(active.request.deadline_s, active.result.total_seconds),
      FinishReasonCstr(active.result.finish_reason));
  if (active.session >= 0) {
    // Reset NOW, not at reuse: paged blocks go back to the shared pool the
    // moment the request retires (prefix-cached blocks stay resident but
    // evictable), so queued requests and the aggregate sweep check see the
    // headroom immediately. Contiguous sessions just drop their position.
    engine_->Reset(active.session);
    free_sessions_.push_back(active.session);
  }
  ++stats_.requests_completed;
  if (!active.result.ok) {
    ++stats_.requests_failed;
  } else if (active.request.deadline_s <= 0.0 ||
             active.result.total_seconds <= active.request.deadline_s) {
    // Goodput: only tokens delivered within the deadline count. A request
    // that finished OK but late contributed nothing an SLO-bound caller can
    // use — its tokens were wasted capacity.
    stats_.goodput_tokens += static_cast<std::int64_t>(active.result.tokens.size());
  }
  completed_.push_back(std::move(active.result));
}

void ServingLoop::FailRow(Active&& active, FinishReason reason, Status status) {
  active.result.finish_reason = reason;
  active.result.status = std::move(status);
  if (reason == FinishReason::kDeadline) {
    ++stats_.requests_deadline_expired;
  }
  RetireRow(std::move(active));
}

void ServingLoop::FailActive(std::size_t index, FinishReason reason, Status status) {
  Active active = std::move(active_[index]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  FailRow(std::move(active), reason, std::move(status));
}

void ServingLoop::Retire(std::size_t index) {
  Active active = std::move(active_[index]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  RetireRow(std::move(active));
}

void ServingLoop::SweepFailures() {
  // Prefilling rows: deadline and per-session fault (their KV headroom was
  // reserved whole at StartPrefill, so no capacity check until they decode).
  for (std::size_t i = 0; i < prefilling_.size();) {
    Active& row = prefilling_[i];
    Status failure;
    FinishReason reason = FinishReason::kNone;
    if (row.request.deadline_s > 0.0 &&
        row.clock.ElapsedSeconds() > row.request.deadline_s) {
      reason = FinishReason::kDeadline;
      failure = DeadlineExceededError(
          "deadline of " + std::to_string(row.request.deadline_s) + "s expired after " +
          std::to_string(row.cursor.processed_tokens()) + " of " +
          std::to_string(row.cursor.total_tokens()) + " prompt tokens prefilled");
    } else {
      Status fault = engine_->TakeSessionFault(row.session);
      if (!fault.ok()) {
        reason = FinishReason::kBackendError;
        failure = fault.WithContext("request " + std::to_string(row.id));
      }
    }
    if (reason == FinishReason::kNone) {
      ++i;
      continue;
    }
    Active failed = std::move(row);
    prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(i));
    FailRow(std::move(failed), reason, std::move(failure));
  }
  for (std::size_t i = 0; i < active_.size();) {
    Active& active = active_[i];
    if (active.request.deadline_s > 0.0 &&
        active.clock.ElapsedSeconds() > active.request.deadline_s) {
      FailActive(i, FinishReason::kDeadline,
                 DeadlineExceededError(
                     "deadline of " + std::to_string(active.request.deadline_s) +
                     "s expired after " + std::to_string(active.result.tokens.size()) +
                     " tokens"));
      continue;
    }
    Status fault = engine_->TakeSessionFault(active.session);
    if (!fault.ok()) {
      FailActive(i, FinishReason::kBackendError,
                 fault.WithContext("request " + std::to_string(active.id)));
      continue;
    }
    // Per-row capacity: the session-local max_seq bound. For paged engines
    // KvRemaining also folds in pool pressure, but pressure is a *shared*
    // condition handled by the aggregate pass below (youngest rows first) —
    // retiring the oldest row here for blocks a younger row consumed would
    // invert that policy.
    const bool session_full =
        engine_->kv_paged()
            ? engine_->position(active.session) >= engine_->config().max_seq
            : engine_->KvRemaining(active.session) < 1;
    if (session_full) {
      FailActive(i, FinishReason::kKvExhausted,
                 ResourceExhaustedError(
                     "kv cache exhausted after " + std::to_string(active.result.tokens.size()) +
                     " generated tokens (max_seq " +
                     std::to_string(engine_->config().max_seq) + ")"));
      continue;
    }
    ++i;
  }
  if (!engine_->kv_paged() || active_.empty()) {
    return;
  }
  // Aggregate pool check: rows sharing one block pool can each have room for
  // their next token individually, yet not fit together (several rows about
  // to cross a block boundary with fewer free blocks than that). Retire the
  // youngest rows — least sunk prefill and decode work — until the sweep's
  // total need fits; each retirement Resets its session, returning blocks to
  // the pool for the survivors (and for the admission queue).
  std::int64_t need = 0;
  for (const Active& active : active_) {
    need += engine_->KvBlocksNeeded(active.session, 1);
  }
  while (!active_.empty() && need > engine_->kv_pool()->available_blocks()) {
    const std::size_t victim = active_.size() - 1;
    const std::int64_t available = engine_->kv_pool()->available_blocks();
    const std::int64_t sweep_need = need;
    need -= engine_->KvBlocksNeeded(active_[victim].session, 1);
    FailActive(victim, FinishReason::kKvExhausted,
               ResourceExhaustedError("kv block pool exhausted: decode sweep needs " +
                                      std::to_string(sweep_need) + " blocks, pool has " +
                                      std::to_string(available) + " available"));
  }
}

void ServingLoop::SampleKvStats() {
  stats_.prefix_tokens_reused = engine_->counters().prefix_tokens_reused;
  if (!engine_->kv_paged()) {
    return;
  }
  const KvBlockPool::Stats pool = engine_->kv_pool()->stats();
  KTX_TRACE_COUNTER("kv", "blocks_in_use", pool.blocks_in_use);
  stats_.kv_blocks_in_use = std::max(stats_.kv_blocks_in_use, pool.blocks_in_use);
  if (pool.total_blocks > 0) {
    stats_.kv_utilization = static_cast<double>(stats_.kv_blocks_in_use) /
                            static_cast<double>(pool.total_blocks);
  }
  if (pool.prefix_lookups > 0) {
    stats_.prefix_hit_rate = static_cast<double>(pool.prefix_hits) /
                             static_cast<double>(pool.prefix_lookups);
  }
}

void ServingLoop::SampleExpertCacheStats() {
  const ExpertCacheStats cache = engine_->expert_cache_stats();
  stats_.expert_cache_lookups = cache.lookups;
  stats_.expert_cache_hits = cache.hits;
  stats_.expert_cache_hit_rate = cache.hit_rate();
  stats_.expert_promotions = cache.promotions;
  stats_.expert_demotions = cache.demotions;
  stats_.expert_hot_bytes = cache.hot_bytes;
  stats_.expert_cold_bytes_saved = cache.cold_bytes_saved;
}

void ServingLoop::DecodeActive() {
  if (active_.empty()) {
    return;
  }
  KTX_TRACE_SPAN_ARG("serving", "decode_sweep", "rows", active_.size());
  // One sweep = one token per decoding request, so per-sweep seconds are the
  // scheduler's TBT estimate.
  Stopwatch sweep_clock;
  sweep_clock.Reset();
  if (!options_.batched_decode) {
    for (std::size_t i = 0; i < active_.size();) {
      Active& active = active_[i];
      auto logits =
          engine_->TryDecodeBatch({SessionToken{active.session, active.last_token}});
      if (!logits.ok()) {
        FailActive(i, FinishReason::kBackendError,
                   logits.status().WithContext("request " + std::to_string(active.id)));
        continue;
      }
      ++stats_.decode_iterations;
      ++stats_.decoded_tokens;
      stats_.peak_batch = std::max(stats_.peak_batch, 1);
      active.last_token = active.sampler.Sample(*logits);
      NoteDecodedToken(&active);
      ++i;
    }
    NoteSweepSeconds(sweep_clock.ElapsedSeconds());
    return;
  }
  // One DecodeBatch sweep over every surviving request (chunked only if the
  // configured concurrency exceeds the engine's batch capacity). Prefilling
  // rows live in their own vector, so active_ is exactly the decode set.
  const auto max_batch = static_cast<std::size_t>(engine_->options().max_batch);
  for (std::size_t begin = 0; begin < active_.size();) {
    const std::size_t rows = std::min(max_batch, active_.size() - begin);
    std::vector<SessionToken> batch(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      batch[r] = SessionToken{active_[begin + r].session, active_[begin + r].last_token};
    }
    auto logits = engine_->TryDecodeBatch(batch);
    if (!logits.ok()) {
      // A whole-chunk failure is not attributable to one row (SweepFailures
      // already retired per-row causes): retire the chunk. Validation in
      // TryDecodeBatch precedes any KV mutation, so sessions are clean and
      // the other chunks keep decoding.
      for (std::size_t r = 0; r < rows; ++r) {
        FailActive(begin, FinishReason::kBackendError,
                   logits.status().WithContext(
                       "request " + std::to_string(active_[begin].id) + " (batch sweep)"));
      }
      continue;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      Active& active = active_[begin + r];
      active.last_token =
          active.sampler.Sample(logits->Slice(static_cast<std::int64_t>(r), 1));
      NoteDecodedToken(&active);
    }
    ++stats_.decode_iterations;
    stats_.decoded_tokens += static_cast<std::int64_t>(rows);
    stats_.peak_batch = std::max(stats_.peak_batch, static_cast<int>(rows));
    begin += rows;
  }
  NoteSweepSeconds(sweep_clock.ElapsedSeconds());
}

int ServingLoop::RunOnce() {
  const auto before = completed_.size();
  if (pending() == 0) {
    return 0;
  }
  KTX_TRACE_SPAN("serving", "sweep");
  KTX_TRACE_COUNTER("serving", "queue_depth", queue_.size());
  KTX_TRACE_COUNTER("serving", "active_requests", prefilling_.size() + active_.size());
  KTX_TRACE_COUNTER("serving", "preempted_requests", preempted_.size());
  // Expired requests leave the queue (and the preempted set) before they can
  // pin capacity or win a slot.
  SweepQueueDeadlines();
  AdmitWaiting();
  // Under kSlackPreempt, a waiting request that outranks a running row takes
  // its slot even though none is free.
  MaybePreempt();
  // Spend this sweep's prefill budget before decoding: completed prompts
  // sample their first token here and decode in this very sweep, exactly
  // like the synchronous path's admission-then-decode ordering.
  AdvancePrefill();
  // Consume each request's pending sampled token; retire finished rows in
  // place so their slots refill from the queue next iteration.
  for (std::size_t i = 0; i < active_.size();) {
    if (ConsumeToken(&active_[i])) {
      Retire(i);
    } else {
      ++i;
    }
  }
  // Per-row terminal checks (deadline, injected fault, KV room) before the
  // sweep: a failing row retires here and its siblings decode unaffected.
  SweepFailures();
  // Everyone still decoding needs exactly one more token: one batched sweep.
  DecodeActive();
  // Pool occupancy peaks while rows are live — sample before retirements
  // next sweep return their blocks.
  SampleKvStats();
  SampleExpertCacheStats();
  return static_cast<int>(completed_.size() - before);
}

void ServingLoop::Stats::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  w.Field("requests_completed", requests_completed);
  w.Field("requests_rejected", requests_rejected);
  w.Field("requests_failed", requests_failed);
  w.Field("requests_deadline_expired", requests_deadline_expired);
  w.Field("tokens_generated", tokens_generated);
  w.Field("goodput_tokens", goodput_tokens);
  w.Field("preemptions", preemptions);
  w.Field("preempt_resumes", preempt_resumes);
  w.Field("preempt_tokens_preserved", preempt_tokens_preserved);
  w.Field("preempt_tokens_adopted", preempt_tokens_adopted);
  w.Field("decode_iterations", decode_iterations);
  w.Field("decoded_tokens", decoded_tokens);
  w.Field("prefill_tokens", prefill_tokens);
  w.Field("prefill_chunks", prefill_chunks);
  w.Field("peak_concurrency", peak_concurrency);
  w.Field("peak_batch", peak_batch);
  w.Key("ttft");
  AppendHistogramJson(w, ttft_s);
  w.Key("tbt");
  AppendHistogramJson(w, tbt_s);
  w.Field("prefix_tokens_reused", prefix_tokens_reused);
  w.Field("prefix_hit_rate", prefix_hit_rate);
  w.Field("kv_blocks_in_use", kv_blocks_in_use);
  w.Field("kv_utilization", kv_utilization);
  w.Field("expert_cache_lookups", expert_cache_lookups);
  w.Field("expert_cache_hits", expert_cache_hits);
  w.Field("expert_cache_hit_rate", expert_cache_hit_rate);
  w.Field("expert_promotions", expert_promotions);
  w.Field("expert_demotions", expert_demotions);
  w.Field("expert_hot_bytes", expert_hot_bytes);
  w.Field("expert_cold_bytes_saved", expert_cold_bytes_saved);
  w.EndObject();
}

std::string ServingLoop::Stats::ToJson() const {
  JsonWriter w;
  AppendJson(w);
  return w.TakeString();
}

void ServingLoop::Stats::PublishTo(MetricsRegistry* registry) const {
  KTX_CHECK(registry != nullptr);
  const auto counter = [registry](const char* name, std::int64_t v) {
    registry->GetCounter(name)->Set(v);
  };
  const auto gauge = [registry](const char* name, double v) {
    registry->GetGauge(name)->Set(v);
  };
  counter("serving.requests_completed_total", requests_completed);
  counter("serving.requests_rejected_total", requests_rejected);
  counter("serving.requests_failed_total", requests_failed);
  counter("serving.requests_deadline_expired_total", requests_deadline_expired);
  counter("serving.tokens_generated_total", tokens_generated);
  counter("serving.goodput_tokens_total", goodput_tokens);
  counter("serving.preemptions_total", preemptions);
  counter("serving.preempt_resumes_total", preempt_resumes);
  counter("serving.preempt_tokens_preserved_total", preempt_tokens_preserved);
  counter("serving.preempt_tokens_adopted_total", preempt_tokens_adopted);
  counter("serving.decode_iterations_total", decode_iterations);
  counter("serving.decoded_tokens_total", decoded_tokens);
  counter("serving.prefill_tokens_total", prefill_tokens);
  counter("serving.prefill_chunks_total", prefill_chunks);
  gauge("serving.peak_concurrency", peak_concurrency);
  gauge("serving.peak_batch", peak_batch);
  counter("kv.prefix_tokens_reused_total", prefix_tokens_reused);
  gauge("kv.prefix_hit_rate", prefix_hit_rate);
  gauge("kv.blocks_in_use_peak", static_cast<double>(kv_blocks_in_use));
  gauge("kv.utilization", kv_utilization);
  counter("expert_cache.lookups_total", expert_cache_lookups);
  counter("expert_cache.hits_total", expert_cache_hits);
  gauge("expert_cache.hit_rate", expert_cache_hit_rate);
  counter("expert_cache.promotions_total", expert_promotions);
  counter("expert_cache.demotions_total", expert_demotions);
  gauge("expert_cache.hot_bytes", static_cast<double>(expert_hot_bytes));
  gauge("expert_cache.cold_bytes_saved", static_cast<double>(expert_cold_bytes_saved));
  registry->GetHistogram("serving.ttft_seconds")->Merge(ttft_s);
  registry->GetHistogram("serving.tbt_seconds")->Merge(tbt_s);
}

std::vector<GenerationResult> ServingLoop::TakeResults() {
  std::vector<GenerationResult> results = std::move(completed_);
  completed_.clear();
  return results;
}

std::vector<GenerationResult> ServingLoop::RunToCompletion() {
  // Rejected-at-submit results recorded before this call stay in completed_.
  while (pending() > 0) {
    RunOnce();
  }
  SampleKvStats();  // final counter values (hit rate, tokens reused)
  SampleExpertCacheStats();
  return TakeResults();
}

}  // namespace ktx
