#include "src/serve/serving.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ktx {

ServingLoop::ServingLoop(HybridEngine* engine, int max_concurrent, bool batched_decode)
    : engine_(engine), max_concurrent_(max_concurrent), batched_decode_(batched_decode) {
  KTX_CHECK(engine_ != nullptr);
  KTX_CHECK_GE(max_concurrent_, 1);
}

std::uint64_t ServingLoop::Submit(GenerationRequest request) {
  KTX_CHECK(!request.prompt.empty()) << "empty prompt";
  const std::uint64_t id = next_id_++;
  queue_.emplace_back(id, std::move(request));
  return id;
}

void ServingLoop::AdmitFromQueue() {
  while (!queue_.empty() && static_cast<int>(active_.size()) < max_concurrent_) {
    auto [id, request] = std::move(queue_.front());
    queue_.pop_front();
    Active active(id, std::move(request));
    if (free_sessions_.empty()) {
      active.session = engine_->CreateSession();
    } else {
      active.session = free_sessions_.back();
      free_sessions_.pop_back();
      engine_->Reset(active.session);
    }
    active.result.id = id;
    active.result.prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
    active.clock.Reset();
    const Tensor logits = engine_->Prefill(active.session, active.request.prompt);
    active.last_token = active.sampler.Sample(logits);
    active.result.time_to_first_token_s = active.clock.ElapsedSeconds();
    active_.push_back(std::move(active));
    stats_.peak_concurrency =
        std::max(stats_.peak_concurrency, static_cast<int>(active_.size()));
  }
}

bool ServingLoop::ConsumeToken(Active* active) {
  if (active->request.eos_token >= 0 && active->last_token == active->request.eos_token) {
    active->result.stopped_at_eos = true;
    return true;
  }
  active->result.tokens.push_back(active->last_token);
  ++stats_.tokens_generated;
  return static_cast<int>(active->result.tokens.size()) >= active->request.max_new_tokens;
}

void ServingLoop::Retire(std::size_t index) {
  active_[index].result.total_seconds = active_[index].clock.ElapsedSeconds();
  free_sessions_.push_back(active_[index].session);
  completed_.push_back(std::move(active_[index].result));
  ++stats_.requests_completed;
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
}

void ServingLoop::DecodeActive() {
  if (!batched_decode_) {
    for (Active& active : active_) {
      ++stats_.decode_iterations;
      ++stats_.decoded_tokens;
      stats_.peak_batch = std::max(stats_.peak_batch, 1);
      const Tensor logits = engine_->DecodeStep(active.session, active.last_token);
      active.last_token = active.sampler.Sample(logits);
    }
    return;
  }
  // One DecodeBatch sweep over every surviving request (chunked only if the
  // configured concurrency exceeds the engine's batch capacity).
  const auto max_batch = static_cast<std::size_t>(engine_->options().max_batch);
  for (std::size_t begin = 0; begin < active_.size(); begin += max_batch) {
    const std::size_t rows = std::min(max_batch, active_.size() - begin);
    std::vector<SessionToken> batch(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      batch[r] = SessionToken{active_[begin + r].session, active_[begin + r].last_token};
    }
    const Tensor logits = engine_->DecodeBatch(batch);
    for (std::size_t r = 0; r < rows; ++r) {
      Active& active = active_[begin + r];
      active.last_token =
          active.sampler.Sample(logits.Slice(static_cast<std::int64_t>(r), 1));
    }
    ++stats_.decode_iterations;
    stats_.decoded_tokens += static_cast<std::int64_t>(rows);
    stats_.peak_batch = std::max(stats_.peak_batch, static_cast<int>(rows));
  }
}

std::vector<GenerationResult> ServingLoop::RunToCompletion() {
  completed_.clear();
  while (!queue_.empty() || !active_.empty()) {
    AdmitFromQueue();
    // Consume each request's pending sampled token; retire finished rows in
    // place so their slots refill from the queue next iteration.
    for (std::size_t i = 0; i < active_.size();) {
      if (ConsumeToken(&active_[i])) {
        Retire(i);
      } else {
        ++i;
      }
    }
    // Everyone still active needs exactly one more token: one batched sweep.
    DecodeActive();
  }
  return std::move(completed_);
}

}  // namespace ktx
