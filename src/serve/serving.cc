#include "src/serve/serving.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace ktx {

std::string_view FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kEos:
      return "eos";
    case FinishReason::kLength:
      return "length";
    case FinishReason::kKvExhausted:
      return "kv_exhausted";
    case FinishReason::kRejected:
      return "rejected";
    case FinishReason::kDeadline:
      return "deadline";
    case FinishReason::kBackendError:
      return "backend_error";
  }
  return "unknown";
}

ServingLoop::ServingLoop(HybridEngine* engine, ServingOptions options)
    : engine_(engine), options_(options) {
  KTX_CHECK(engine_ != nullptr);
  KTX_CHECK_GE(options_.max_concurrent, 1);
  KTX_CHECK_GE(options_.max_queue, 1);
}

ServingLoop::ServingLoop(HybridEngine* engine, int max_concurrent, bool batched_decode)
    : ServingLoop(engine, ServingOptions{max_concurrent, batched_decode}) {}

Status ServingLoop::ValidateRequest(const GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return InvalidArgumentError("empty prompt");
  }
  if (request.max_new_tokens < 1) {
    return InvalidArgumentError("max_new_tokens must be >= 1, got " +
                                std::to_string(request.max_new_tokens));
  }
  const std::int64_t vocab = engine_->config().vocab;
  for (std::size_t i = 0; i < request.prompt.size(); ++i) {
    if (request.prompt[i] < 0 || request.prompt[i] >= vocab) {
      return InvalidArgumentError("prompt token " + std::to_string(request.prompt[i]) +
                                  " at index " + std::to_string(i) + " outside vocab [0, " +
                                  std::to_string(vocab) + ")");
    }
  }
  const std::int64_t max_seq = engine_->config().max_seq;
  if (static_cast<std::int64_t>(request.prompt.size()) > max_seq) {
    return InvalidArgumentError("prompt of " + std::to_string(request.prompt.size()) +
                                " tokens exceeds the kv capacity max_seq=" +
                                std::to_string(max_seq));
  }
  return OkStatus();
}

void ServingLoop::Reject(std::uint64_t id, const GenerationRequest& request, Status status,
                         FinishReason reason, double elapsed_s) {
  GenerationResult result;
  result.id = id;
  result.ok = false;
  result.status = std::move(status);
  result.finish_reason = reason;
  result.prompt_tokens = static_cast<std::int64_t>(request.prompt.size());
  result.queue_seconds = elapsed_s;
  result.total_seconds = elapsed_s;
  completed_.push_back(std::move(result));
  ++stats_.requests_rejected;
}

std::uint64_t ServingLoop::Submit(GenerationRequest request) {
  const std::uint64_t id = next_id_++;
  Status valid = ValidateRequest(request);
  if (valid.ok() && static_cast<int>(queue_.size()) >= options_.max_queue) {
    valid = ResourceExhaustedError("admission queue full (" + std::to_string(queue_.size()) +
                                   " of max_queue=" + std::to_string(options_.max_queue) + ")");
  }
  if (!valid.ok()) {
    Reject(id, request, valid.WithContext("submit"), FinishReason::kRejected,
           /*elapsed_s=*/0.0);
    return id;
  }
  Pending pending;
  pending.id = id;
  pending.request = std::move(request);
  pending.submitted.Reset();
  queue_.push_back(std::move(pending));
  return id;
}

void ServingLoop::AdmitFromQueue() {
  while (!queue_.empty() && static_cast<int>(active_.size()) < options_.max_concurrent) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    const double waited_s = pending.submitted.ElapsedSeconds();
    if (pending.request.deadline_s > 0.0 && waited_s > pending.request.deadline_s) {
      Reject(pending.id, pending.request,
             DeadlineExceededError("deadline of " + std::to_string(pending.request.deadline_s) +
                                   "s expired after " + std::to_string(waited_s) +
                                   "s in the admission queue"),
             FinishReason::kDeadline, waited_s);
      continue;
    }
    Active active(pending.id, std::move(pending.request));
    if (free_sessions_.empty()) {
      auto session = engine_->TryCreateSession();
      if (!session.ok()) {
        Reject(active.id, active.request, session.status().WithContext("admission"),
               FinishReason::kRejected, waited_s);
        continue;
      }
      active.session = *session;
    } else {
      active.session = free_sessions_.back();
      free_sessions_.pop_back();
      engine_->Reset(active.session);
    }
    active.result.id = active.id;
    active.result.prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
    active.clock = pending.submitted;  // metrics are measured from Submit
    active.result.queue_seconds = waited_s;
    auto logits = engine_->TryPrefill(active.session, active.request.prompt);
    if (!logits.ok()) {
      // The prompt itself was validated at Submit; what's left is capacity
      // (a prior request grew this session? impossible after Reset — keep the
      // mapping anyway) or an injected backend fault.
      const FinishReason reason = logits.status().code() == StatusCode::kResourceExhausted
                                      ? FinishReason::kKvExhausted
                                      : FinishReason::kBackendError;
      active_.push_back(std::move(active));
      FailActive(active_.size() - 1, reason, logits.status().WithContext("admission"));
      continue;
    }
    active.last_token = active.sampler.Sample(*logits);
    active.result.time_to_first_token_s = active.clock.ElapsedSeconds();
    active_.push_back(std::move(active));
    stats_.peak_concurrency =
        std::max(stats_.peak_concurrency, static_cast<int>(active_.size()));
  }
}

bool ServingLoop::ConsumeToken(Active* active) {
  if (active->request.eos_token >= 0 && active->last_token == active->request.eos_token) {
    active->result.stopped_at_eos = true;
    active->result.finish_reason = FinishReason::kEos;
    return true;
  }
  active->result.tokens.push_back(active->last_token);
  ++stats_.tokens_generated;
  // Checked only after the push: Submit guarantees max_new_tokens >= 1, so a
  // request for N tokens returns exactly N (the old pre-validation code let
  // max_new_tokens <= 0 return one token).
  if (static_cast<int>(active->result.tokens.size()) >= active->request.max_new_tokens) {
    active->result.finish_reason = FinishReason::kLength;
    return true;
  }
  return false;
}

void ServingLoop::FailActive(std::size_t index, FinishReason reason, Status status) {
  Active& active = active_[index];
  active.result.finish_reason = reason;
  active.result.status = std::move(status);
  Retire(index);
}

void ServingLoop::Retire(std::size_t index) {
  Active& active = active_[index];
  active.result.ok = active.result.status.ok();
  active.result.stopped_at_eos = active.result.finish_reason == FinishReason::kEos;
  active.result.total_seconds = active.clock.ElapsedSeconds();
  if (active.session >= 0) {
    free_sessions_.push_back(active.session);
  }
  ++stats_.requests_completed;
  if (!active.result.ok) {
    ++stats_.requests_failed;
  }
  completed_.push_back(std::move(active.result));
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
}

void ServingLoop::SweepFailures() {
  for (std::size_t i = 0; i < active_.size();) {
    Active& active = active_[i];
    if (active.request.deadline_s > 0.0 &&
        active.clock.ElapsedSeconds() > active.request.deadline_s) {
      FailActive(i, FinishReason::kDeadline,
                 DeadlineExceededError(
                     "deadline of " + std::to_string(active.request.deadline_s) +
                     "s expired after " + std::to_string(active.result.tokens.size()) +
                     " tokens"));
      continue;
    }
    Status fault = engine_->TakeSessionFault(active.session);
    if (!fault.ok()) {
      FailActive(i, FinishReason::kBackendError,
                 fault.WithContext("request " + std::to_string(active.id)));
      continue;
    }
    if (engine_->KvRemaining(active.session) < 1) {
      FailActive(i, FinishReason::kKvExhausted,
                 ResourceExhaustedError(
                     "kv cache exhausted after " + std::to_string(active.result.tokens.size()) +
                     " generated tokens (max_seq " +
                     std::to_string(engine_->config().max_seq) + ")"));
      continue;
    }
    ++i;
  }
}

void ServingLoop::DecodeActive() {
  if (!options_.batched_decode) {
    for (std::size_t i = 0; i < active_.size();) {
      Active& active = active_[i];
      auto logits =
          engine_->TryDecodeBatch({SessionToken{active.session, active.last_token}});
      if (!logits.ok()) {
        FailActive(i, FinishReason::kBackendError,
                   logits.status().WithContext("request " + std::to_string(active.id)));
        continue;
      }
      ++stats_.decode_iterations;
      ++stats_.decoded_tokens;
      stats_.peak_batch = std::max(stats_.peak_batch, 1);
      active.last_token = active.sampler.Sample(*logits);
      ++i;
    }
    return;
  }
  // One DecodeBatch sweep over every surviving request (chunked only if the
  // configured concurrency exceeds the engine's batch capacity).
  const auto max_batch = static_cast<std::size_t>(engine_->options().max_batch);
  for (std::size_t begin = 0; begin < active_.size();) {
    const std::size_t rows = std::min(max_batch, active_.size() - begin);
    std::vector<SessionToken> batch(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      batch[r] = SessionToken{active_[begin + r].session, active_[begin + r].last_token};
    }
    auto logits = engine_->TryDecodeBatch(batch);
    if (!logits.ok()) {
      // A whole-chunk failure is not attributable to one row (SweepFailures
      // already retired per-row causes): retire the chunk. Validation in
      // TryDecodeBatch precedes any KV mutation, so sessions are clean and
      // the other chunks keep decoding.
      for (std::size_t r = 0; r < rows; ++r) {
        FailActive(begin, FinishReason::kBackendError,
                   logits.status().WithContext(
                       "request " + std::to_string(active_[begin].id) + " (batch sweep)"));
      }
      continue;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      Active& active = active_[begin + r];
      active.last_token =
          active.sampler.Sample(logits->Slice(static_cast<std::int64_t>(r), 1));
    }
    ++stats_.decode_iterations;
    stats_.decoded_tokens += static_cast<std::int64_t>(rows);
    stats_.peak_batch = std::max(stats_.peak_batch, static_cast<int>(rows));
    begin += rows;
  }
}

std::vector<GenerationResult> ServingLoop::RunToCompletion() {
  // Rejected-at-submit results recorded before this call stay in completed_.
  while (!queue_.empty() || !active_.empty()) {
    AdmitFromQueue();
    // Consume each request's pending sampled token; retire finished rows in
    // place so their slots refill from the queue next iteration.
    for (std::size_t i = 0; i < active_.size();) {
      if (ConsumeToken(&active_[i])) {
        Retire(i);
      } else {
        ++i;
      }
    }
    // Per-row terminal checks (deadline, injected fault, KV room) before the
    // sweep: a failing row retires here and its siblings decode unaffected.
    SweepFailures();
    // Everyone still active needs exactly one more token: one batched sweep.
    DecodeActive();
  }
  return std::move(completed_);
}

}  // namespace ktx
