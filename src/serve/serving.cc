#include "src/serve/serving.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ktx {

ServingLoop::ServingLoop(HybridEngine* engine, int max_concurrent)
    : engine_(engine), max_concurrent_(max_concurrent) {
  KTX_CHECK(engine_ != nullptr);
  KTX_CHECK_GE(max_concurrent_, 1);
}

std::uint64_t ServingLoop::Submit(GenerationRequest request) {
  KTX_CHECK(!request.prompt.empty()) << "empty prompt";
  const std::uint64_t id = next_id_++;
  queue_.emplace_back(id, std::move(request));
  return id;
}

void ServingLoop::AdmitFromQueue() {
  while (!queue_.empty() && static_cast<int>(active_.size()) < max_concurrent_) {
    auto [id, request] = std::move(queue_.front());
    queue_.pop_front();
    Active active(id, std::move(request));
    if (free_sessions_.empty()) {
      active.session = engine_->CreateSession();
    } else {
      active.session = free_sessions_.back();
      free_sessions_.pop_back();
      engine_->Reset(active.session);
    }
    active.result.id = id;
    active.result.prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
    active.clock.Reset();
    const Tensor logits = engine_->Prefill(active.session, active.request.prompt);
    active.last_token = active.sampler.Sample(logits);
    active.result.time_to_first_token_s = active.clock.ElapsedSeconds();
    active_.push_back(std::move(active));
    stats_.peak_concurrency =
        std::max(stats_.peak_concurrency, static_cast<int>(active_.size()));
  }
}

bool ServingLoop::StepOne(Active* active) {
  if (active->request.eos_token >= 0 && active->last_token == active->request.eos_token) {
    active->result.stopped_at_eos = true;
    return true;
  }
  active->result.tokens.push_back(active->last_token);
  ++stats_.tokens_generated;
  if (static_cast<int>(active->result.tokens.size()) >= active->request.max_new_tokens) {
    return true;
  }
  const Tensor logits = engine_->DecodeStep(active->session, active->last_token);
  active->last_token = active->sampler.Sample(logits);
  return false;
}

std::vector<GenerationResult> ServingLoop::RunToCompletion() {
  completed_.clear();
  while (!queue_.empty() || !active_.empty()) {
    AdmitFromQueue();
    // One round-robin sweep: one token of progress per active request.
    for (std::size_t i = 0; i < active_.size();) {
      ++stats_.decode_iterations;
      if (StepOne(&active_[i])) {
        active_[i].result.total_seconds = active_[i].clock.ElapsedSeconds();
        free_sessions_.push_back(active_[i].session);
        completed_.push_back(std::move(active_[i].result));
        ++stats_.requests_completed;
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  return std::move(completed_);
}

}  // namespace ktx
