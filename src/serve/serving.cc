#include "src/serve/serving.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace ktx {

std::string_view FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kEos:
      return "eos";
    case FinishReason::kLength:
      return "length";
    case FinishReason::kKvExhausted:
      return "kv_exhausted";
    case FinishReason::kRejected:
      return "rejected";
    case FinishReason::kDeadline:
      return "deadline";
    case FinishReason::kBackendError:
      return "backend_error";
  }
  return "unknown";
}

ServingLoop::ServingLoop(HybridEngine* engine, ServingOptions options)
    : engine_(engine), options_(options) {
  KTX_CHECK(engine_ != nullptr);
  KTX_CHECK_GE(options_.max_concurrent, 1);
  KTX_CHECK_GE(options_.max_queue, 1);
}

ServingLoop::ServingLoop(HybridEngine* engine, int max_concurrent, bool batched_decode)
    : ServingLoop(engine, ServingOptions{max_concurrent, batched_decode}) {}

Status ServingLoop::ValidateRequest(const GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return InvalidArgumentError("empty prompt");
  }
  if (request.max_new_tokens < 1) {
    return InvalidArgumentError("max_new_tokens must be >= 1, got " +
                                std::to_string(request.max_new_tokens));
  }
  const std::int64_t vocab = engine_->config().vocab;
  for (std::size_t i = 0; i < request.prompt.size(); ++i) {
    if (request.prompt[i] < 0 || request.prompt[i] >= vocab) {
      return InvalidArgumentError("prompt token " + std::to_string(request.prompt[i]) +
                                  " at index " + std::to_string(i) + " outside vocab [0, " +
                                  std::to_string(vocab) + ")");
    }
  }
  const std::int64_t max_seq = engine_->config().max_seq;
  if (static_cast<std::int64_t>(request.prompt.size()) > max_seq) {
    return InvalidArgumentError("prompt of " + std::to_string(request.prompt.size()) +
                                " tokens exceeds the kv capacity max_seq=" +
                                std::to_string(max_seq));
  }
  // A request that cannot reach max_new_tokens within the session's KV bound
  // is doomed at submit time: reject it here (kRejected, no work spent)
  // instead of prefilling the prompt and retiring it kv_exhausted mid-decode.
  if (static_cast<std::int64_t>(request.prompt.size()) + request.max_new_tokens > max_seq) {
    return InvalidArgumentError(
        "prompt of " + std::to_string(request.prompt.size()) + " tokens + max_new_tokens=" +
        std::to_string(request.max_new_tokens) + " cannot fit the kv capacity max_seq=" +
        std::to_string(max_seq));
  }
  return OkStatus();
}

void ServingLoop::Reject(std::uint64_t id, const GenerationRequest& request, Status status,
                         FinishReason reason, double elapsed_s) {
  GenerationResult result;
  result.id = id;
  result.ok = false;
  result.status = std::move(status);
  result.finish_reason = reason;
  result.prompt_tokens = static_cast<std::int64_t>(request.prompt.size());
  result.queue_seconds = elapsed_s;
  result.total_seconds = elapsed_s;
  completed_.push_back(std::move(result));
  ++stats_.requests_rejected;
}

std::uint64_t ServingLoop::Submit(GenerationRequest request) {
  const std::uint64_t id = next_id_++;
  Status valid = ValidateRequest(request);
  if (valid.ok() && static_cast<int>(queue_.size()) >= options_.max_queue) {
    valid = ResourceExhaustedError("admission queue full (" + std::to_string(queue_.size()) +
                                   " of max_queue=" + std::to_string(options_.max_queue) + ")");
  }
  if (!valid.ok()) {
    Reject(id, request, valid.WithContext("submit"), FinishReason::kRejected,
           /*elapsed_s=*/0.0);
    return id;
  }
  Pending pending;
  pending.id = id;
  pending.request = std::move(request);
  pending.submitted.Reset();
  queue_.push_back(std::move(pending));
  return id;
}

void ServingLoop::NoteFirstToken(Active* active) {
  const double now = active->clock.ElapsedSeconds();
  active->result.time_to_first_token_s = now;
  active->last_emit_s = now;
  stats_.ttft_s.Record(now);
}

void ServingLoop::NoteDecodedToken(Active* active) {
  const double now = active->clock.ElapsedSeconds();
  stats_.tbt_s.Record(now - active->last_emit_s);
  active->last_emit_s = now;
}

void ServingLoop::AdmitFromQueue() {
  const bool interleaved = options_.prefill_budget_tokens > 0;
  while (!queue_.empty() && static_cast<int>(prefilling_.size() + active_.size()) <
                                options_.max_concurrent) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    const double waited_s = pending.submitted.ElapsedSeconds();
    if (pending.request.deadline_s > 0.0 && waited_s > pending.request.deadline_s) {
      Reject(pending.id, pending.request,
             DeadlineExceededError("deadline of " + std::to_string(pending.request.deadline_s) +
                                   "s expired after " + std::to_string(waited_s) +
                                   "s in the admission queue"),
             FinishReason::kDeadline, waited_s);
      continue;
    }
    Active active(pending.id, std::move(pending.request));
    if (free_sessions_.empty()) {
      auto session = engine_->TryCreateSession();
      if (!session.ok()) {
        Reject(active.id, active.request, session.status().WithContext("admission"),
               FinishReason::kRejected, waited_s);
        continue;
      }
      active.session = *session;
    } else {
      active.session = free_sessions_.back();
      free_sessions_.pop_back();
      engine_->Reset(active.session);
    }
    active.result.id = active.id;
    active.result.prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
    active.clock = pending.submitted;  // metrics are measured from Submit
    active.result.queue_seconds = waited_s;
    // A row counts toward peak_concurrency once it truly holds a slot —
    // including an immediate admission failure, but NOT a pool-pressure
    // re-queue (the request goes back unadmitted).
    const auto note_slot = [this] {
      stats_.peak_concurrency =
          std::max(stats_.peak_concurrency,
                   static_cast<int>(prefilling_.size() + active_.size()) + 1);
    };
    // Paged engines draw KV from one shared pool: a block-reservation failure
    // while other requests are in flight is back-pressure, not doom — their
    // retirements return blocks. Such a request re-queues at the head
    // (admission order preserved) and this sweep stops admitting; it only
    // fails kv_exhausted when nothing in flight could free blocks for it.
    const auto pool_pressure = [this](const Status& status) {
      return engine_->kv_paged() &&
             status.code() == StatusCode::kResourceExhausted &&
             !(prefilling_.empty() && active_.empty());
    };
    const auto requeue = [this](Active&& row) {
      free_sessions_.push_back(row.session);
      Pending back;
      back.id = row.id;
      back.request = std::move(row.request);
      back.submitted = row.clock;  // still running since Submit
      queue_.push_front(std::move(back));
    };

    if (interleaved) {
      // Stall-free admission: validate everything (KV headroom for the whole
      // prompt included) but run no prefill work inside the admission sweep.
      auto cursor = engine_->StartPrefill(active.session, active.request.prompt);
      if (!cursor.ok()) {
        if (pool_pressure(cursor.status())) {
          requeue(std::move(active));
          break;
        }
        note_slot();
        const FinishReason reason =
            cursor.status().code() == StatusCode::kResourceExhausted
                ? FinishReason::kKvExhausted
                : FinishReason::kBackendError;
        FailRow(std::move(active), reason, cursor.status().WithContext("admission"));
        continue;
      }
      note_slot();
      active.cursor = std::move(*cursor);
      prefilling_.push_back(std::move(active));
      continue;
    }

    // Synchronous admission (prefill_budget_tokens == 0): the legacy path —
    // the whole prompt runs here, stalling this sweep's decodes behind it.
    auto logits = engine_->TryPrefill(active.session, active.request.prompt);
    if (!logits.ok()) {
      if (pool_pressure(logits.status())) {
        requeue(std::move(active));
        break;
      }
      note_slot();
      // The prompt itself was validated at Submit; what's left is capacity
      // (a prior request grew this session? impossible after Reset — keep the
      // mapping anyway) or an injected backend fault.
      const FinishReason reason = logits.status().code() == StatusCode::kResourceExhausted
                                      ? FinishReason::kKvExhausted
                                      : FinishReason::kBackendError;
      FailRow(std::move(active), reason, logits.status().WithContext("admission"));
      continue;
    }
    note_slot();
    const auto prompt_tokens = static_cast<std::int64_t>(active.request.prompt.size());
    const std::int64_t chunk = engine_->options().prefill_chunk;
    stats_.prefill_tokens += prompt_tokens;
    stats_.prefill_chunks += (prompt_tokens + chunk - 1) / chunk;
    active.last_token = active.sampler.Sample(*logits);
    NoteFirstToken(&active);
    active_.push_back(std::move(active));
  }
}

void ServingLoop::AdvancePrefill() {
  std::int64_t spent = 0;
  // Oldest request first (admission order), one engine chunk at a time. The
  // budget is checked before each chunk: a sweep with prefill work always
  // advances at least one chunk, and overshoots by < prefill_chunk tokens.
  while (!prefilling_.empty() && spent < options_.prefill_budget_tokens) {
    Active& row = prefilling_.front();
    if (row.request.deadline_s > 0.0 &&
        row.clock.ElapsedSeconds() > row.request.deadline_s) {
      Active failed = std::move(row);
      prefilling_.erase(prefilling_.begin());
      FailRow(std::move(failed), FinishReason::kDeadline,
              DeadlineExceededError(
                  "deadline of " + std::to_string(failed.request.deadline_s) +
                  "s expired after " + std::to_string(failed.cursor.processed_tokens()) +
                  " of " + std::to_string(failed.cursor.total_tokens()) +
                  " prompt tokens prefilled"));
      continue;
    }
    auto advanced = engine_->TryPrefillNext(&row.cursor);
    if (!advanced.ok()) {
      const FinishReason reason =
          advanced.status().code() == StatusCode::kResourceExhausted
              ? FinishReason::kKvExhausted
              : FinishReason::kBackendError;
      Active failed = std::move(row);
      prefilling_.erase(prefilling_.begin());
      FailRow(std::move(failed), reason,
              advanced.status().WithContext("request " + std::to_string(failed.id)));
      continue;
    }
    spent += *advanced;
    stats_.prefill_tokens += *advanced;
    ++stats_.prefill_chunks;
    if (row.cursor.done()) {
      row.last_token = row.sampler.Sample(row.cursor.logits());
      NoteFirstToken(&row);
      Active done = std::move(row);
      prefilling_.erase(prefilling_.begin());
      active_.push_back(std::move(done));
    }
  }
}

bool ServingLoop::ConsumeToken(Active* active) {
  if (active->request.eos_token >= 0 && active->last_token == active->request.eos_token) {
    active->result.stopped_at_eos = true;
    active->result.finish_reason = FinishReason::kEos;
    return true;
  }
  active->result.tokens.push_back(active->last_token);
  ++stats_.tokens_generated;
  // Checked only after the push: Submit guarantees max_new_tokens >= 1, so a
  // request for N tokens returns exactly N (the old pre-validation code let
  // max_new_tokens <= 0 return one token).
  if (static_cast<int>(active->result.tokens.size()) >= active->request.max_new_tokens) {
    active->result.finish_reason = FinishReason::kLength;
    return true;
  }
  return false;
}

void ServingLoop::RetireRow(Active&& active) {
  active.result.ok = active.result.status.ok();
  active.result.stopped_at_eos = active.result.finish_reason == FinishReason::kEos;
  active.result.total_seconds = active.clock.ElapsedSeconds();
  if (active.session >= 0) {
    // Reset NOW, not at reuse: paged blocks go back to the shared pool the
    // moment the request retires (prefix-cached blocks stay resident but
    // evictable), so queued requests and the aggregate sweep check see the
    // headroom immediately. Contiguous sessions just drop their position.
    engine_->Reset(active.session);
    free_sessions_.push_back(active.session);
  }
  ++stats_.requests_completed;
  if (!active.result.ok) {
    ++stats_.requests_failed;
  }
  completed_.push_back(std::move(active.result));
}

void ServingLoop::FailRow(Active&& active, FinishReason reason, Status status) {
  active.result.finish_reason = reason;
  active.result.status = std::move(status);
  RetireRow(std::move(active));
}

void ServingLoop::FailActive(std::size_t index, FinishReason reason, Status status) {
  Active& active = active_[index];
  active.result.finish_reason = reason;
  active.result.status = std::move(status);
  Retire(index);
}

void ServingLoop::Retire(std::size_t index) {
  Active active = std::move(active_[index]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  RetireRow(std::move(active));
}

void ServingLoop::SweepFailures() {
  // Prefilling rows: deadline and per-session fault (their KV headroom was
  // reserved whole at StartPrefill, so no capacity check until they decode).
  for (std::size_t i = 0; i < prefilling_.size();) {
    Active& row = prefilling_[i];
    Status failure;
    FinishReason reason = FinishReason::kNone;
    if (row.request.deadline_s > 0.0 &&
        row.clock.ElapsedSeconds() > row.request.deadline_s) {
      reason = FinishReason::kDeadline;
      failure = DeadlineExceededError(
          "deadline of " + std::to_string(row.request.deadline_s) + "s expired after " +
          std::to_string(row.cursor.processed_tokens()) + " of " +
          std::to_string(row.cursor.total_tokens()) + " prompt tokens prefilled");
    } else {
      Status fault = engine_->TakeSessionFault(row.session);
      if (!fault.ok()) {
        reason = FinishReason::kBackendError;
        failure = fault.WithContext("request " + std::to_string(row.id));
      }
    }
    if (reason == FinishReason::kNone) {
      ++i;
      continue;
    }
    Active failed = std::move(row);
    prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(i));
    FailRow(std::move(failed), reason, std::move(failure));
  }
  for (std::size_t i = 0; i < active_.size();) {
    Active& active = active_[i];
    if (active.request.deadline_s > 0.0 &&
        active.clock.ElapsedSeconds() > active.request.deadline_s) {
      FailActive(i, FinishReason::kDeadline,
                 DeadlineExceededError(
                     "deadline of " + std::to_string(active.request.deadline_s) +
                     "s expired after " + std::to_string(active.result.tokens.size()) +
                     " tokens"));
      continue;
    }
    Status fault = engine_->TakeSessionFault(active.session);
    if (!fault.ok()) {
      FailActive(i, FinishReason::kBackendError,
                 fault.WithContext("request " + std::to_string(active.id)));
      continue;
    }
    // Per-row capacity: the session-local max_seq bound. For paged engines
    // KvRemaining also folds in pool pressure, but pressure is a *shared*
    // condition handled by the aggregate pass below (youngest rows first) —
    // retiring the oldest row here for blocks a younger row consumed would
    // invert that policy.
    const bool session_full =
        engine_->kv_paged()
            ? engine_->position(active.session) >= engine_->config().max_seq
            : engine_->KvRemaining(active.session) < 1;
    if (session_full) {
      FailActive(i, FinishReason::kKvExhausted,
                 ResourceExhaustedError(
                     "kv cache exhausted after " + std::to_string(active.result.tokens.size()) +
                     " generated tokens (max_seq " +
                     std::to_string(engine_->config().max_seq) + ")"));
      continue;
    }
    ++i;
  }
  if (!engine_->kv_paged() || active_.empty()) {
    return;
  }
  // Aggregate pool check: rows sharing one block pool can each have room for
  // their next token individually, yet not fit together (several rows about
  // to cross a block boundary with fewer free blocks than that). Retire the
  // youngest rows — least sunk prefill and decode work — until the sweep's
  // total need fits; each retirement Resets its session, returning blocks to
  // the pool for the survivors (and for the admission queue).
  std::int64_t need = 0;
  for (const Active& active : active_) {
    need += engine_->KvBlocksNeeded(active.session, 1);
  }
  while (!active_.empty() && need > engine_->kv_pool()->available_blocks()) {
    const std::size_t victim = active_.size() - 1;
    const std::int64_t available = engine_->kv_pool()->available_blocks();
    const std::int64_t sweep_need = need;
    need -= engine_->KvBlocksNeeded(active_[victim].session, 1);
    FailActive(victim, FinishReason::kKvExhausted,
               ResourceExhaustedError("kv block pool exhausted: decode sweep needs " +
                                      std::to_string(sweep_need) + " blocks, pool has " +
                                      std::to_string(available) + " available"));
  }
}

void ServingLoop::SampleKvStats() {
  stats_.prefix_tokens_reused = engine_->counters().prefix_tokens_reused;
  if (!engine_->kv_paged()) {
    return;
  }
  const KvBlockPool::Stats pool = engine_->kv_pool()->stats();
  stats_.kv_blocks_in_use = std::max(stats_.kv_blocks_in_use, pool.blocks_in_use);
  if (pool.total_blocks > 0) {
    stats_.kv_utilization = static_cast<double>(stats_.kv_blocks_in_use) /
                            static_cast<double>(pool.total_blocks);
  }
  if (pool.prefix_lookups > 0) {
    stats_.prefix_hit_rate = static_cast<double>(pool.prefix_hits) /
                             static_cast<double>(pool.prefix_lookups);
  }
}

void ServingLoop::SampleExpertCacheStats() {
  const ExpertCacheStats cache = engine_->expert_cache_stats();
  stats_.expert_cache_lookups = cache.lookups;
  stats_.expert_cache_hits = cache.hits;
  stats_.expert_cache_hit_rate = cache.hit_rate();
  stats_.expert_promotions = cache.promotions;
  stats_.expert_demotions = cache.demotions;
  stats_.expert_hot_bytes = cache.hot_bytes;
  stats_.expert_cold_bytes_saved = cache.cold_bytes_saved;
}

void ServingLoop::DecodeActive() {
  if (!options_.batched_decode) {
    for (std::size_t i = 0; i < active_.size();) {
      Active& active = active_[i];
      auto logits =
          engine_->TryDecodeBatch({SessionToken{active.session, active.last_token}});
      if (!logits.ok()) {
        FailActive(i, FinishReason::kBackendError,
                   logits.status().WithContext("request " + std::to_string(active.id)));
        continue;
      }
      ++stats_.decode_iterations;
      ++stats_.decoded_tokens;
      stats_.peak_batch = std::max(stats_.peak_batch, 1);
      active.last_token = active.sampler.Sample(*logits);
      NoteDecodedToken(&active);
      ++i;
    }
    return;
  }
  // One DecodeBatch sweep over every surviving request (chunked only if the
  // configured concurrency exceeds the engine's batch capacity). Prefilling
  // rows live in their own vector, so active_ is exactly the decode set.
  const auto max_batch = static_cast<std::size_t>(engine_->options().max_batch);
  for (std::size_t begin = 0; begin < active_.size();) {
    const std::size_t rows = std::min(max_batch, active_.size() - begin);
    std::vector<SessionToken> batch(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      batch[r] = SessionToken{active_[begin + r].session, active_[begin + r].last_token};
    }
    auto logits = engine_->TryDecodeBatch(batch);
    if (!logits.ok()) {
      // A whole-chunk failure is not attributable to one row (SweepFailures
      // already retired per-row causes): retire the chunk. Validation in
      // TryDecodeBatch precedes any KV mutation, so sessions are clean and
      // the other chunks keep decoding.
      for (std::size_t r = 0; r < rows; ++r) {
        FailActive(begin, FinishReason::kBackendError,
                   logits.status().WithContext(
                       "request " + std::to_string(active_[begin].id) + " (batch sweep)"));
      }
      continue;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      Active& active = active_[begin + r];
      active.last_token =
          active.sampler.Sample(logits->Slice(static_cast<std::int64_t>(r), 1));
      NoteDecodedToken(&active);
    }
    ++stats_.decode_iterations;
    stats_.decoded_tokens += static_cast<std::int64_t>(rows);
    stats_.peak_batch = std::max(stats_.peak_batch, static_cast<int>(rows));
    begin += rows;
  }
}

std::vector<GenerationResult> ServingLoop::RunToCompletion() {
  // Rejected-at-submit results recorded before this call stay in completed_.
  while (!queue_.empty() || !prefilling_.empty() || !active_.empty()) {
    AdmitFromQueue();
    // Spend this sweep's prefill budget before decoding: completed prompts
    // sample their first token here and decode in this very sweep, exactly
    // like the synchronous path's admission-then-decode ordering.
    AdvancePrefill();
    // Consume each request's pending sampled token; retire finished rows in
    // place so their slots refill from the queue next iteration.
    for (std::size_t i = 0; i < active_.size();) {
      if (ConsumeToken(&active_[i])) {
        Retire(i);
      } else {
        ++i;
      }
    }
    // Per-row terminal checks (deadline, injected fault, KV room) before the
    // sweep: a failing row retires here and its siblings decode unaffected.
    SweepFailures();
    // Everyone still decoding needs exactly one more token: one batched sweep.
    DecodeActive();
    // Pool occupancy peaks while rows are live — sample before retirements
    // next sweep return their blocks.
    SampleKvStats();
    SampleExpertCacheStats();
  }
  SampleKvStats();  // final counter values (hit rate, tokens reused)
  SampleExpertCacheStats();
  return std::move(completed_);
}

}  // namespace ktx
