// The fused CPU MoE operator (paper §3.2).
//
// One Forward() call executes all routed experts for a batch of tokens as two
// fused task batches:
//
//   batch A: per (expert, intermediate-band) — Gate and Up projections fused
//            (no data dependency), SwiGLU applied in-register;
//   batch B: per (expert, hidden-band)       — Down projection into a
//            per-expert staging buffer;
//   reduce:  per token-band                  — weighted scatter-add into the
//            output rows (single writer per token, so no atomics).
//
// Under the default dynamic schedule the three phases are *chained*: one flat
// task list is drained by the pool's lock-free cursor, and an expert's Down
// bands become runnable the moment its last Gate/Up band finishes (per-expert
// atomic countdowns instead of global barriers); a reduce band runs as soon as
// every expert contributing to its tokens has staged its outputs. The static
// schedule keeps the classic three-batch block partition. Either way the
// summation order per token is fixed by a precomputed contribution index laid
// out in routing-slot order, so outputs are bit-identical across schedules,
// thread counts, and batch compositions (a token's reduce order never depends
// on which other tokens share the call). This is what
// absorbs the heavy expert-activation imbalance of the prefill phase (up to
// 1.83x, Fig. 14 'd'). The kernel kind per expert-group follows the
// arithmetic-intensity rule of Fig. 7: a calibrated dispatch table (when the
// engine provides one via MoeOptions::dispatch) maps tokens-per-expert to the
// fastest measured variant; otherwise the fixed ari_threshold heuristic
// applies, restricted to kinds the host actually has. The chosen kind is
// resolved through the kernel-variant registry (kernel_registry.h), so the
// fused pipeline below is expressed once against the variant interface and
// every variant produces bit-identical outputs.
//
// Every buffer the forward pass needs lives in a persistent per-CpuMoe
// workspace that grows to a high-water mark: steady-state decode performs zero
// heap allocations (see Reserve()).
//
// Expert Deferral hooks in through the routing-slot window: the engine calls
// Forward() with slots [0, I) for immediate experts and [I, top_k) for
// deferred experts of the previous layer (§4.1).

#ifndef KTX_SRC_CPU_MOE_CPU_H_
#define KTX_SRC_CPU_MOE_CPU_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/task_queue.h"
#include "src/common/thread_pool.h"
#include "src/cpu/gemm.h"
#include "src/cpu/layout.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct KernelDispatchTable;  // src/cpu/kernel_calibrate.h

// Gate/Up/Down projections of one routed expert, packed tile-wise.
struct PackedExpert {
  PackedMatrix gate;  // [inter, hidden]
  PackedMatrix up;    // [inter, hidden]
  PackedMatrix down;  // [hidden, inter]
};

class PackedExperts {
 public:
  // Packs `num_experts` expert FFNs from f32 tensors. gate/up: [inter, hidden],
  // down: [hidden, inter].
  static StatusOr<PackedExperts> Pack(const std::vector<Tensor>& gate,
                                      const std::vector<Tensor>& up,
                                      const std::vector<Tensor>& down, DType dtype);

  int num_experts() const { return static_cast<int>(experts_.size()); }
  std::int64_t hidden() const { return hidden_; }
  std::int64_t inter() const { return inter_; }
  DType dtype() const { return dtype_; }
  const PackedExpert& expert(int e) const { return experts_[static_cast<std::size_t>(e)]; }
  std::size_t total_bytes() const;

 private:
  std::vector<PackedExpert> experts_;
  std::int64_t hidden_ = 0;
  std::int64_t inter_ = 0;
  DType dtype_ = DType::kBF16;
};

// Routing decisions for a token batch: per token, `top_k` (expert, weight)
// slots ordered by descending routing score.
struct MoeRouting {
  std::int64_t tokens = 0;
  int top_k = 0;
  std::vector<int> expert_ids;  // [tokens * top_k]
  std::vector<float> weights;   // [tokens * top_k]

  int id(std::int64_t t, int slot) const { return expert_ids[t * top_k + slot]; }
  float weight(std::int64_t t, int slot) const { return weights[t * top_k + slot]; }
};

struct MoeOptions {
  ScheduleKind schedule = ScheduleKind::kDynamic;
  std::int64_t ari_threshold = 4;                // Fig. 7 crossover (fallback)
  std::optional<KernelKind> force_kind;          // override dispatch entirely
  KernelImpl impl = KernelImpl::kAuto;
  std::int64_t band_blocks = 4;                  // 16-wide tile bands per task
  // Calibrated dispatch table (kernel_calibrate.h), consulted per expert-group
  // when non-null and non-empty; force_kind still wins. Not owned — the engine
  // keeps the calibration result alive for the CpuMoe's lifetime.
  const KernelDispatchTable* dispatch = nullptr;
};

// Pre-computed hot-expert rows for one routed batch (filled by the expert
// placement manager before the CPU forward is submitted). Indexed by absolute
// routing slot: entry (t, s) covers slot s in [0, top_k) of token t. For a
// served slot, `rows` holds the *unweighted* expert FFN output — for a
// tensor-parallel shard, that shard's partial down projection — and the
// reduce adds it in routing-slot order exactly like a staged cold row, which
// keeps the per-token summation order (and therefore the bits) identical to
// the unplaced baseline. Forward() skips served slots entirely on the CPU
// expert path: no grouping, no Gate/Up/Down tasks, no weight-byte traffic.
struct HotSlots {
  const std::uint8_t* served = nullptr;  // [tokens * top_k], 1 = served hot
  const float* rows = nullptr;           // [tokens * top_k, hidden]
};

struct MoeStats {
  // Routed-expert requests completed (one per AsyncMoeService request,
  // regardless of batch width — a B-token batched submit counts once).
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  int activated_experts = 0;
  std::int64_t max_tokens_per_expert = 0;
  // Total tasks dispatched, across all three phases (Gate/Up+SwiGLU, Down,
  // and the reduce scatter-add — the reduce phase counts too).
  std::int64_t subtasks = 0;
  // GEMM calls by the *resolved* variant kind (what actually executed, after
  // availability-aware selection and down-tiering — not what was requested).
  std::int64_t amx_calls = 0;
  std::int64_t avx512_calls = 0;
  std::int64_t avx2_calls = 0;
  std::int64_t scalar_calls = 0;
  std::int64_t gemm_calls() const {
    return amx_calls + avx512_calls + avx2_calls + scalar_calls;
  }
  double useful_flops = 0.0;
  // Expert-cache split of the routed slots: `hot_rows` were served from
  // pre-computed hot-expert rows (no CPU expert work), `cold_rows` ran the
  // full CPU expert path.
  std::int64_t hot_rows = 0;
  std::int64_t cold_rows = 0;
};

// Persistent forward workspace, defined in moe_cpu.cc. One per CpuMoe; holds
// the expert-group index, staging buffers, contribution index, chained-phase
// countdowns and per-worker GEMM scratch across Forward() calls.
struct MoeWorkspace;

class CpuMoe {
 public:
  CpuMoe(std::shared_ptr<const PackedExperts> experts, ThreadPool* pool, MoeOptions options);
  ~CpuMoe();
  CpuMoe(CpuMoe&&) noexcept;
  CpuMoe& operator=(CpuMoe&&) noexcept;

  // Pre-sizes the workspace for batches of up to `max_tokens` tokens over slot
  // windows of up to `max_slots` routing slots. Forward() calls at or below
  // that shape then perform no heap allocations. Growing is always automatic;
  // this only front-loads it (e.g. before entering the decode loop).
  void Reserve(std::int64_t max_tokens, int max_slots) const;

  // Accumulates the weighted outputs of routing slots [slot_begin, slot_end)
  // into y[tokens, hidden] (row-major, leading dimension = hidden).
  // x is [tokens, hidden] f32. Slots flagged in `hot` (may be null) are
  // satisfied from the pre-computed hot rows instead of the CPU expert path.
  // Concurrent calls on one CpuMoe serialize on the shared workspace.
  void Forward(const float* x, std::int64_t tokens, const MoeRouting& routing, int slot_begin,
               int slot_end, float* y, MoeStats* stats = nullptr,
               const HotSlots* hot = nullptr) const;

  // All slots at once.
  void Forward(const float* x, std::int64_t tokens, const MoeRouting& routing, float* y,
               MoeStats* stats = nullptr) const {
    Forward(x, tokens, routing, 0, routing.top_k, y, stats);
  }

  const PackedExperts& experts() const { return *experts_; }
  const MoeOptions& options() const { return options_; }

 private:
  std::shared_ptr<const PackedExperts> experts_;
  ThreadPool* pool_;
  MoeOptions options_;
  // unique_ptr so CpuMoe stays movable (the workspace holds a mutex and is
  // referenced by address from in-flight task descriptors).
  std::unique_ptr<MoeWorkspace> ws_;
};

// Reference f32 implementation against the unpacked weights (tests).
void RefMoeForward(const std::vector<Tensor>& gate, const std::vector<Tensor>& up,
                   const std::vector<Tensor>& down, const float* x, std::int64_t tokens,
                   const MoeRouting& routing, int slot_begin, int slot_end, float* y);

}  // namespace ktx

#endif  // KTX_SRC_CPU_MOE_CPU_H_
