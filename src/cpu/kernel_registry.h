// The kernel-variant registry: the single authoritative table of every GEMM
// backend the CPU substrate can dispatch to (ROADMAP item 4; the "registered
// variant table" seam of the cross-platform fused-MoE design).
//
// Each entry is a {kind, impl} pair with an availability predicate, a dtype
// support predicate, the kernel entry point, and a per-variant scratch-bytes
// function. Six variants are registered:
//
//   amx_native      kAmx    x kNative    (TDPBF16PS / TDPBSSD tile kernels)
//   avx512_native   kAvx512 x kNative    (row kernels on 16-lane vectors)
//   avx2_native     kAvx2   x kNative    (row kernels on 8-lane vectors)
//   amx_emulated    kAmx    x kEmulated  (portable tile emulation)
//   avx512_emulated kAvx512 x kEmulated  (same emulation, row-kernel label)
//   scalar          kScalar x kEmulated  (the emulation as a first-class kind)
//
// Every variant computes the identical canonical op sequence per dtype
// (tile.cc documents bf16; gemm.cc documents f32 and the quantized rescale),
// so any two selectable variants are bit-identical — dispatch is purely a
// performance decision and never a numerics decision. The fused MoE operator
// (moe_cpu.cc) holds a resolved variant per expert-group and calls its entry
// point directly: no per-backend branches live outside this table.
//
// Adding a backend = adding one entry here plus its kernel translation unit;
// the matrix test (kernel_registry_test.cc) then enforces bit-identity against
// the emulated reference automatically. INTERNALS.md section 13 walks through
// the procedure.

#ifndef KTX_SRC_CPU_KERNEL_REGISTRY_H_
#define KTX_SRC_CPU_KERNEL_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/cpu/gemm.h"
#include "src/cpu/layout.h"

namespace ktx {

struct KernelVariant {
  KernelKind kind;
  KernelImpl impl;   // concrete: kNative or kEmulated, never kAuto
  const char* name;  // stable identifier: profiles, CLI, CI forcing, bench
  // True when this host can execute the variant right now (toolchain support
  // baked in AND the CPU grants the feature). Emulated entries always pass.
  bool (*available)();
  bool (*supports_dtype)(DType dtype);
  // The kernel itself. Same contract as GemmPacked with the options exploded.
  void (*gemm)(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
               float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
               std::int64_t nb_end, void* scratch, std::size_t scratch_bytes);
  // This variant's own scratch demand for one call against `w`. Always
  // <= GemmScratchBytes(w), which is the max over the whole registry.
  std::size_t (*scratch_bytes)(const PackedMatrix& w);
};

// All registered variants, fixed order (index is a stable handle within one
// process — the MoE workspace stores it per expert-group).
const std::vector<KernelVariant>& KernelRegistry();

// Exact-entry lookup; nullptr when no entry has this (kind, impl) pair.
// `impl` must be concrete (kAuto has no entry).
const KernelVariant* FindKernelVariant(KernelKind kind, KernelImpl impl);

// Index of `v` in KernelRegistry() (the MoE group handle).
int KernelVariantIndex(const KernelVariant& v);

// Resolves a dispatch request to a runnable variant:
//   * kNative:   the native entry for `kind` — or, when that entry does not
//                support `dtype` (AMX has no f32 tile op), the next native
//                tier down that does. CHECK-fails when nothing native fits
//                (mirrors the old "native requested but unavailable" abort).
//   * kEmulated: the portable emulation under the requested kind's label
//                (kAvx2 and kScalar share the scalar entry).
//   * kAuto:     the native entry when available and dtype-capable, else the
//                ladder kAmx -> kAvx512 -> kAvx2 down-tier of available
//                natives, else the scalar emulation. Never aborts.
const KernelVariant& ResolveKernelVariant(KernelKind kind, KernelImpl impl, DType dtype);

// Host capability snapshot for the ARI kernel switch, injectable for tests
// (satellite: dispatch must only choose among variants whose availability
// predicate passes).
struct KernelAvailability {
  bool amx = false;
  bool avx512 = false;
  bool avx2 = false;
  static KernelAvailability Host();
};

// SelectKernel (gemm.h) with the availability explicit.
KernelKind SelectKernelWith(std::int64_t tokens_per_expert, std::int64_t threshold,
                            const KernelAvailability& avail);

const char* KernelKindName(KernelKind kind);
const char* KernelImplName(KernelImpl impl);

// Parses a variant name ("amx_native", "avx512_emulated", "scalar", ...) or a
// bare kind ("amx", "avx512", "avx2") into a forced (kind, impl) pair; bare
// kinds force kAuto impl. nullopt on unknown names.
struct ForcedKernel {
  KernelKind kind;
  KernelImpl impl;
};
std::optional<ForcedKernel> ParseForcedKernel(std::string_view name);

// The KTX_FORCE_KERNEL environment override (CI kernel-variant matrix job):
// when set to a parseable variant name, CpuMoe forces every expert-group onto
// that variant. nullopt when unset; unparseable values log a warning once and
// return nullopt.
std::optional<ForcedKernel> ForcedKernelFromEnv();

}  // namespace ktx

#endif  // KTX_SRC_CPU_KERNEL_REGISTRY_H_
