// Runtime CPU capability detection and AMX enablement.
//
// AMX tile state (XTILEDATA) is opt-in on Linux: a process must request it
// with arch_prctl(ARCH_REQ_XCOMP_PERM) before executing any tile instruction.
// KTransformers performs this request once at startup; if the kernel or CPU
// refuses, every AMX-layout kernel transparently falls back to the bit-exact
// software tile emulation in tile.h, so functional behaviour is identical on
// machines without AMX.

#ifndef KTX_SRC_CPU_CPU_FEATURES_H_
#define KTX_SRC_CPU_CPU_FEATURES_H_

#include <string>

namespace ktx {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512_bf16 = false;
  bool avx512_vnni = false;
  bool amx_tile = false;
  bool amx_int8 = false;
  bool amx_bf16 = false;
  // True when the OS granted XTILEDATA permission, i.e. real tile
  // instructions may execute in this process.
  bool amx_usable = false;

  std::string ToString() const;
};

// Detects once and caches (thread-safe). Performs the XTILEDATA request on
// first call when the CPUID bits are present.
const CpuFeatures& GetCpuFeatures();

// True if the native AMX code path may run (CPUID + OS permission + this
// binary was built with AMX codegen enabled).
bool NativeAmxAvailable();

// True if the native AVX-512(BF16/VNNI) code path may run.
bool NativeAvx512Available();

// True if the native AVX2+FMA code path may run (bf16 weights only; the
// wider-ISA paths are preferred when present).
bool NativeAvx2Available();

}  // namespace ktx

#endif  // KTX_SRC_CPU_CPU_FEATURES_H_
