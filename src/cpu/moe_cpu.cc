#include "src/cpu/moe_cpu.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/align.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/cpu/activation.h"
#include "src/cpu/kernel_calibrate.h"
#include "src/cpu/kernel_registry.h"

namespace ktx {

StatusOr<PackedExperts> PackedExperts::Pack(const std::vector<Tensor>& gate,
                                            const std::vector<Tensor>& up,
                                            const std::vector<Tensor>& down, DType dtype) {
  if (gate.empty() || gate.size() != up.size() || gate.size() != down.size()) {
    return InvalidArgumentError("PackedExperts::Pack: mismatched expert tensor lists");
  }
  PackedExperts pe;
  pe.inter_ = gate[0].dim(0);
  pe.hidden_ = gate[0].dim(1);
  pe.dtype_ = dtype;
  pe.experts_.reserve(gate.size());
  for (std::size_t e = 0; e < gate.size(); ++e) {
    if (gate[e].dim(0) != pe.inter_ || gate[e].dim(1) != pe.hidden_ ||
        up[e].dim(0) != pe.inter_ || up[e].dim(1) != pe.hidden_ ||
        down[e].dim(0) != pe.hidden_ || down[e].dim(1) != pe.inter_) {
      return InvalidArgumentError("PackedExperts::Pack: inconsistent expert shapes");
    }
    PackedExpert px;
    KTX_ASSIGN_OR_RETURN(px.gate, PackedMatrix::Pack(gate[e], dtype));
    KTX_ASSIGN_OR_RETURN(px.up, PackedMatrix::Pack(up[e], dtype));
    KTX_ASSIGN_OR_RETURN(px.down, PackedMatrix::Pack(down[e], dtype));
    pe.experts_.push_back(std::move(px));
  }
  return pe;
}

std::size_t PackedExperts::total_bytes() const {
  std::size_t total = 0;
  for (const PackedExpert& e : experts_) {
    total += e.gate.payload_bytes() + e.up.payload_bytes() + e.down.payload_bytes();
  }
  return total;
}

namespace moe_detail {

// Token rows per reduce task (single writer per output row).
inline constexpr std::int64_t kReduceBand = 32;

// Grow-only typed span over an aligned allocation. Contents are rebuilt every
// Forward call, so growth discards them (no copy); doubling keeps the
// allocation count logarithmic in the high-water mark.
template <typename T>
class ScratchVec {
 public:
  void EnsureCapacity(std::size_t n) {
    if (n > cap_) {
      const std::size_t grown = std::max(n, 2 * cap_);
      buf_ = AlignedBuffer(grown * sizeof(T));
      cap_ = grown;
    }
  }
  T* data() { return buf_.as<T>(); }
  const T* data() const { return buf_.as<T>(); }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::size_t capacity() const { return cap_; }

 private:
  AlignedBuffer buf_;
  std::size_t cap_ = 0;
};

}  // namespace moe_detail

// All state of one fused forward pass, persistent across calls. Synchronization
// during the chained phase uses std::atomic_ref over the plain arrays — the
// struct itself stays assignable storage and the buffers stay reusable memory.
//
// Task numbering for one call (G groups, bands_a/bands_b bands per group,
// n_r reduce bands):
//   [0, n_a)            Gate/Up + SwiGLU   task i -> group i / bands_a
//   [n_a, n_a + n_b)    Down               task n_a + j -> group j / bands_b
//   [n_a + n_b, total)  weighted reduce    task n_a + n_b + r -> token band r
// The chained schedule drains `ready`, a slot array of task ids: slots
// [0, n_a) are implicitly the Gate/Up tasks; each later slot is published
// (release store) by the completion event that makes its task runnable and
// claimed in cursor order by ParallelRun with chunk = 1.
struct MoeWorkspace {
  std::mutex mu;  // serializes Forward/Reserve on one CpuMoe

  // --- grouping: token rows per activated expert, first-appearance order ---
  moe_detail::ScratchVec<std::int32_t> group_of_expert;  // [num_experts], -1 between calls
  moe_detail::ScratchVec<std::int32_t> group_expert;     // [G]
  moe_detail::ScratchVec<std::int32_t> group_variant;    // [G] KernelRegistry index
  moe_detail::ScratchVec<std::int64_t> group_count;      // [G]
  moe_detail::ScratchVec<std::int64_t> group_off;        // [G] first staging row
  moe_detail::ScratchVec<std::int64_t> group_fill;       // [G] pass-2 cursor
  moe_detail::ScratchVec<std::int64_t> token_rows;       // [rows] ascending per group

  // --- per-token contribution index; fixes the reduce summation order ---
  moe_detail::ScratchVec<std::int64_t> contrib_src;  // [tokens * S] staging row
  moe_detail::ScratchVec<float> contrib_w;           // [tokens * S]

  // --- staging buffers, all groups flattened row-major ---
  moe_detail::ScratchVec<float> x_gathered;  // [rows, hidden]
  moe_detail::ScratchVec<float> gate_up;     // [rows, 2*inter]
  moe_detail::ScratchVec<float> act;         // [rows, inter]
  moe_detail::ScratchVec<float> out;         // [rows, hidden]

  // --- chained execution state ---
  moe_detail::ScratchVec<std::int32_t> ready;           // [n_b + n_r] task ids, -1 unfilled
  moe_detail::ScratchVec<std::int32_t> a_remaining;     // [G] Gate/Up bands left
  moe_detail::ScratchVec<std::int32_t> b_remaining;     // [G] Down bands left
  moe_detail::ScratchVec<std::int32_t> band_remaining;  // [n_r] contributions left
  std::int64_t ready_tail = 0;                          // next slot (global id), atomic_ref
  std::int64_t kind_calls[4] = {0, 0, 0, 0};            // by KernelKind; atomic_ref, relaxed
  Counter* kind_counters[4] = {nullptr, nullptr, nullptr, nullptr};  // metrics, by KernelKind

  // --- per-worker GEMM scratch (slot num_threads serves non-pool callers) ---
  moe_detail::ScratchVec<std::byte> gemm_scratch;
  std::size_t scratch_stride = 0;
  int scratch_slots = 0;

  // --- call constants, set before dispatch ---
  const PackedExperts* experts = nullptr;
  ThreadPool* pool = nullptr;
  const float* x = nullptr;
  const float* hot_rows = nullptr;  // [tokens * top_k, hidden] when hot slots exist
  float* y = nullptr;
  std::int64_t hidden = 0;
  std::int64_t inter = 0;
  std::int64_t tokens = 0;
  std::int64_t slots = 0;  // slot window width S
  std::int64_t num_groups = 0;
  std::int64_t nb_inter = 0;
  std::int64_t nb_hidden = 0;
  std::int64_t bands_a = 0;
  std::int64_t bands_b = 0;
  std::int64_t n_a = 0;
  std::int64_t n_b = 0;
  std::int64_t n_r = 0;
  std::int64_t band_blocks = 0;
  std::int64_t phase_base = 0;  // static schedule: task id of the phase's first task
};

namespace {

using moe_detail::kReduceBand;

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Grows every workspace buffer to cover batches of `tokens` tokens over slot
// windows of `slots` slots. No-op (and allocation-free) at or below the
// high-water mark.
void EnsureCapacity(MoeWorkspace* ws, const PackedExperts& ex, ThreadPool* pool,
                    std::int64_t band_blocks, std::int64_t tokens, std::int64_t slots) {
  const std::int64_t hidden = ex.hidden();
  const std::int64_t inter = ex.inter();
  const auto num_experts = static_cast<std::size_t>(ex.num_experts());
  const auto rows = static_cast<std::size_t>(tokens * slots);
  const std::size_t g_max = std::min<std::size_t>(num_experts, rows);
  const auto bands_b =
      static_cast<std::size_t>(CeilDiv(ex.expert(0).down.n_blocks(), band_blocks));
  const auto n_r = static_cast<std::size_t>(CeilDiv(tokens, kReduceBand));

  if (ws->group_of_expert.capacity() < num_experts) {
    ws->group_of_expert.EnsureCapacity(num_experts);
    std::memset(ws->group_of_expert.data(), 0xFF,
                ws->group_of_expert.capacity() * sizeof(std::int32_t));
  }
  ws->group_expert.EnsureCapacity(g_max);
  ws->group_variant.EnsureCapacity(g_max);
  ws->group_count.EnsureCapacity(g_max);
  ws->group_off.EnsureCapacity(g_max);
  ws->group_fill.EnsureCapacity(g_max);
  ws->token_rows.EnsureCapacity(rows);
  ws->contrib_src.EnsureCapacity(rows);
  ws->contrib_w.EnsureCapacity(rows);
  ws->x_gathered.EnsureCapacity(rows * static_cast<std::size_t>(hidden));
  ws->gate_up.EnsureCapacity(rows * static_cast<std::size_t>(2 * inter));
  ws->act.EnsureCapacity(rows * static_cast<std::size_t>(inter));
  ws->out.EnsureCapacity(rows * static_cast<std::size_t>(hidden));
  ws->ready.EnsureCapacity(g_max * bands_b + n_r);
  ws->a_remaining.EnsureCapacity(g_max);
  ws->b_remaining.EnsureCapacity(g_max);
  ws->band_remaining.EnsureCapacity(n_r);

  if (ws->scratch_stride == 0) {
    ws->scratch_stride = AlignUp(std::max(GemmScratchBytes(ex.expert(0).gate),
                                          GemmScratchBytes(ex.expert(0).down)),
                                 kCacheLineBytes);
  }
  ws->scratch_slots = static_cast<int>(pool->num_threads()) + 1;
  ws->gemm_scratch.EnsureCapacity(static_cast<std::size_t>(ws->scratch_slots) *
                                  ws->scratch_stride);
}

void* TaskScratch(MoeWorkspace* ws) {
  const int cur = ws->pool->CurrentSlot();
  const int idx = cur < 0 ? ws->scratch_slots - 1 : cur;
  return ws->gemm_scratch.data() + static_cast<std::size_t>(idx) * ws->scratch_stride;
}

void CountKernelCalls(MoeWorkspace* ws, KernelKind kind, std::int64_t calls) {
  std::atomic_ref<std::int64_t>(ws->kind_calls[static_cast<int>(kind)])
      .fetch_add(calls, std::memory_order_relaxed);
}

// The resolved variant an expert-group dispatches to. group_variant holds a
// KernelRegistry() index, fixed at Forward() grouping time — the fused
// pipeline below has no per-backend branches of its own.
const KernelVariant& GroupVariant(const MoeWorkspace* ws, std::size_t g) {
  return KernelRegistry()[static_cast<std::size_t>(ws->group_variant[g])];
}

// Gate + Up projections for one (group, inter-band), SwiGLU in the same task
// so both projections stream the same gathered activations.
void ExecGateUp(MoeWorkspace* ws, std::int64_t idx) {
  const auto g = static_cast<std::size_t>(idx / ws->bands_a);
  const std::int64_t b0 = (idx % ws->bands_a) * ws->band_blocks;
  const std::int64_t b1 = std::min(ws->nb_inter, b0 + ws->band_blocks);
  const PackedExpert& w = ws->experts->expert(ws->group_expert[g]);
  const std::int64_t te = ws->group_count[g];
  const std::int64_t off = ws->group_off[g];
  const std::int64_t hidden = ws->hidden;
  const std::int64_t inter = ws->inter;
  const KernelVariant& v = GroupVariant(ws, g);
  void* scratch = TaskScratch(ws);
  const float* xg = ws->x_gathered.data() + off * hidden;
  float* gu = ws->gate_up.data() + off * 2 * inter;
  // Gate into columns [0, inter), Up into [inter, 2*inter).
  v.gemm(xg, te, hidden, w.gate, gu, 2 * inter, /*accumulate=*/false, b0, b1, scratch,
         ws->scratch_stride);
  v.gemm(xg, te, hidden, w.up, gu + inter, 2 * inter, /*accumulate=*/false, b0, b1, scratch,
         ws->scratch_stride);
  const std::int64_t c0 = b0 * kNBlock;
  const std::int64_t c1 = std::min(inter, b1 * kNBlock);
  float* act = ws->act.data() + off * inter;
  for (std::int64_t r = 0; r < te; ++r) {
    SiluMul(gu + r * 2 * inter + c0, gu + r * 2 * inter + inter + c0, act + r * inter + c0,
            c1 - c0);
  }
  CountKernelCalls(ws, v.kind, 2);
}

// Down projection for one (group, hidden-band) into the staged output rows.
void ExecDown(MoeWorkspace* ws, std::int64_t idx) {
  const auto g = static_cast<std::size_t>(idx / ws->bands_b);
  const std::int64_t b0 = (idx % ws->bands_b) * ws->band_blocks;
  const std::int64_t b1 = std::min(ws->nb_hidden, b0 + ws->band_blocks);
  const PackedExpert& w = ws->experts->expert(ws->group_expert[g]);
  const std::int64_t te = ws->group_count[g];
  const std::int64_t off = ws->group_off[g];
  const KernelVariant& v = GroupVariant(ws, g);
  v.gemm(ws->act.data() + off * ws->inter, te, ws->inter, w.down,
         ws->out.data() + off * ws->hidden, ws->hidden, /*accumulate=*/false, b0, b1,
         TaskScratch(ws), ws->scratch_stride);
  CountKernelCalls(ws, v.kind, 1);
}

// Weighted scatter-add for one token band. The contribution index fixes the
// per-token summation order to routing-slot order, so the result depends
// neither on which schedule or thread count produced the staged rows nor on
// which other tokens share the batch (a token's sum is the same whether its
// experts were grouped with one token or with many — the property batched
// decode's bit-identity guarantee rests on).
void ExecReduce(MoeWorkspace* ws, std::int64_t idx) {
  const std::int64_t t0 = idx * kReduceBand;
  const std::int64_t t1 = std::min(ws->tokens, t0 + kReduceBand);
  const std::int64_t hidden = ws->hidden;
  for (std::int64_t t = t0; t < t1; ++t) {
    const std::int64_t base = t * ws->slots;
    for (std::int64_t j = 0; j < ws->slots; ++j) {
      const std::int64_t src = ws->contrib_src[static_cast<std::size_t>(base + j)];
      // Negative src encodes a hot-served slot: -(t*top_k + s) - 1 indexes the
      // pre-computed hot row. The add happens at the same position in the same
      // slot order either way, so hot/cold placement cannot change the
      // per-token summation order.
      const float* row = src >= 0 ? ws->out.data() + src * hidden
                                  : ws->hot_rows + (-src - 1) * hidden;
      AxpyInPlace(ws->y + t * hidden, row,
                  ws->contrib_w[static_cast<std::size_t>(base + j)], hidden);
    }
  }
}

void ExecuteTask(MoeWorkspace* ws, std::int64_t id) {
  if (id < ws->n_a) {
    ExecGateUp(ws, id);
  } else if (id < ws->n_a + ws->n_b) {
    ExecDown(ws, id - ws->n_a);
  } else {
    ExecReduce(ws, id - ws->n_a - ws->n_b);
  }
}

// Publishes task `id` into the next ready slot. The release store pairs with
// the acquire load in ChainedBody; the slot index was reserved through
// ready_tail, which only hands out as many slots as there are pushes.
void PushReady(MoeWorkspace* ws, std::int64_t slot_pos, std::int64_t id) {
  std::atomic_ref<std::int32_t> slot(ws->ready[static_cast<std::size_t>(slot_pos - ws->n_a)]);
  slot.store(static_cast<std::int32_t>(id), std::memory_order_release);
}

// Executes one task and performs the cross-phase chaining bookkeeping.
//
// Ordering argument: every write a successor task must observe is sequenced
// before the predecessor's acq_rel fetch_sub on the shared countdown; the
// final decrement reads from the whole release sequence, so the pushing thread
// observes all predecessors' writes, and its release store into `ready` hands
// them to whichever thread claims the slot (acquire load).
void ChainedStep(MoeWorkspace* ws, std::int64_t id) {
  ExecuteTask(ws, id);
  if (id < ws->n_a) {
    const auto g = static_cast<std::size_t>(id / ws->bands_a);
    std::atomic_ref<std::int32_t> rem(ws->a_remaining[g]);
    if (rem.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last Gate/Up band of group g: its Down tasks become runnable.
      std::atomic_ref<std::int64_t> tail(ws->ready_tail);
      const std::int64_t pos = tail.fetch_add(ws->bands_b, std::memory_order_relaxed);
      for (std::int64_t bi = 0; bi < ws->bands_b; ++bi) {
        PushReady(ws, pos + bi,
                  ws->n_a + static_cast<std::int64_t>(g) * ws->bands_b + bi);
      }
    }
  } else if (id < ws->n_a + ws->n_b) {
    const auto g = static_cast<std::size_t>((id - ws->n_a) / ws->bands_b);
    std::atomic_ref<std::int32_t> rem(ws->b_remaining[g]);
    if (rem.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Group g's staged outputs are complete: retire its contributions from
      // each reduce band's countdown (token rows are ascending, so one pass
      // batches the decrement per band); the last contributing group
      // publishes the band's reduce task.
      const std::int64_t* rows = ws->token_rows.data() + ws->group_off[g];
      const std::int64_t n = ws->group_count[g];
      std::int64_t i = 0;
      while (i < n) {
        const std::int64_t band = rows[i] / kReduceBand;
        std::int32_t cnt = 1;
        ++i;
        while (i < n && rows[i] / kReduceBand == band) {
          ++cnt;
          ++i;
        }
        std::atomic_ref<std::int32_t> brem(ws->band_remaining[static_cast<std::size_t>(band)]);
        if (brem.fetch_sub(cnt, std::memory_order_acq_rel) == cnt) {
          std::atomic_ref<std::int64_t> tail(ws->ready_tail);
          const std::int64_t pos = tail.fetch_add(1, std::memory_order_relaxed);
          PushReady(ws, pos, ws->n_a + ws->n_b + band);
        }
      }
    }
  }
}

// ParallelRun body for the chained schedule. Slot indices below n_a are the
// (always-runnable) Gate/Up tasks; later slots spin until their task id is
// published. Progress is guaranteed: the minimal claimed-but-unfilled slot's
// publisher lives in a smaller, already-executed slot (Gate/Up slots are
// pre-filled by construction), so some thread is always executing.
void ChainedBody(void* ctx, std::size_t begin, std::size_t end) {
  auto* ws = static_cast<MoeWorkspace*>(ctx);
  for (std::size_t i = begin; i < end; ++i) {
    auto id = static_cast<std::int64_t>(i);
    if (id >= ws->n_a) {
      std::atomic_ref<std::int32_t> slot(ws->ready[static_cast<std::size_t>(id - ws->n_a)]);
      std::int32_t v = slot.load(std::memory_order_acquire);
      while (v < 0) {
        std::this_thread::yield();
        v = slot.load(std::memory_order_acquire);
      }
      id = v;
    }
    ChainedStep(ws, id);
  }
}

// ParallelRun body for one phase of the static schedule (no chaining).
void StaticBody(void* ctx, std::size_t begin, std::size_t end) {
  auto* ws = static_cast<MoeWorkspace*>(ctx);
  for (std::size_t i = begin; i < end; ++i) {
    ExecuteTask(ws, ws->phase_base + static_cast<std::int64_t>(i));
  }
}

}  // namespace

CpuMoe::CpuMoe(std::shared_ptr<const PackedExperts> experts, ThreadPool* pool,
               MoeOptions options)
    : experts_(std::move(experts)),
      pool_(pool),
      options_(options),
      ws_(std::make_unique<MoeWorkspace>()) {
  KTX_CHECK(experts_ != nullptr);
  KTX_CHECK(pool_ != nullptr);
  KTX_CHECK_GE(options_.band_blocks, 1);
  // CI kernel-variant matrix: KTX_FORCE_KERNEL pins every expert-group onto
  // one registered variant, overriding both the caller's force_kind and the
  // calibrated dispatch table.
  if (const std::optional<ForcedKernel> forced = ForcedKernelFromEnv()) {
    options_.force_kind = forced->kind;
    options_.impl = forced->impl;
  }
  ws_->experts = experts_.get();
  ws_->pool = pool_;
  ws_->band_blocks = options_.band_blocks;
  // Resolve the per-kind metric counters once; registry lookups take a mutex.
  ws_->kind_counters[static_cast<int>(KernelKind::kAmx)] =
      MetricsRegistry::Global().GetCounter("moe.gemm_calls_amx_total");
  ws_->kind_counters[static_cast<int>(KernelKind::kAvx512)] =
      MetricsRegistry::Global().GetCounter("moe.gemm_calls_avx512_total");
  ws_->kind_counters[static_cast<int>(KernelKind::kAvx2)] =
      MetricsRegistry::Global().GetCounter("moe.gemm_calls_avx2_total");
  ws_->kind_counters[static_cast<int>(KernelKind::kScalar)] =
      MetricsRegistry::Global().GetCounter("moe.gemm_calls_scalar_total");
}

CpuMoe::~CpuMoe() = default;
CpuMoe::CpuMoe(CpuMoe&&) noexcept = default;
CpuMoe& CpuMoe::operator=(CpuMoe&&) noexcept = default;

void CpuMoe::Reserve(std::int64_t max_tokens, int max_slots) const {
  if (max_tokens <= 0 || max_slots <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(ws_->mu);
  EnsureCapacity(ws_.get(), *experts_, pool_, options_.band_blocks, max_tokens, max_slots);
}

void CpuMoe::Forward(const float* x, std::int64_t tokens, const MoeRouting& routing,
                     int slot_begin, int slot_end, float* y, MoeStats* stats,
                     const HotSlots* hot) const {
  KTX_CHECK_EQ(tokens, routing.tokens);
  KTX_CHECK(slot_begin >= 0 && slot_end <= routing.top_k && slot_begin <= slot_end);
  const std::int64_t window = slot_end - slot_begin;
  if (tokens <= 0 || window <= 0) {
    return;
  }
  const std::int64_t hidden = experts_->hidden();
  const std::int64_t inter = experts_->inter();
  const int num_experts = experts_->num_experts();
  const std::uint8_t* served = hot != nullptr ? hot->served : nullptr;
  const int top_k = routing.top_k;

  MoeWorkspace* ws = ws_.get();
  trace::ScopedSpan moe_span("moe", "cpu_moe_forward", "tokens", tokens);
  std::lock_guard<std::mutex> lock(ws->mu);
  EnsureCapacity(ws, *experts_, pool_, options_.band_blocks, tokens, window);

  // --- Group tokens by expert (first-appearance order), two passes. ---------
  // Hot-served slots never enter a group: the cold groups (and hence their
  // token counts, kernel kinds and task shapes) are exactly what they would
  // be if the hot experts did not exist in the batch.
  std::int32_t* goe = ws->group_of_expert.data();
  std::int64_t num_groups = 0;
  std::int64_t hot_count = 0;
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (int s = slot_begin; s < slot_end; ++s) {
      if (served != nullptr && served[t * top_k + s] != 0) {
        ++hot_count;
        continue;
      }
      const int e = routing.id(t, s);
      KTX_DCHECK(e >= 0 && e < num_experts) << "bad expert id " << e;
      std::int32_t g = goe[e];
      if (g < 0) {
        g = static_cast<std::int32_t>(num_groups++);
        goe[e] = g;
        ws->group_expert[static_cast<std::size_t>(g)] = e;
        ws->group_count[static_cast<std::size_t>(g)] = 0;
      }
      ++ws->group_count[static_cast<std::size_t>(g)];
    }
  }

  // Per-group kernel choice: force_kind wins; else the calibrated dispatch
  // table (when provided) maps tokens-per-expert to the fastest measured kind;
  // else the fixed ari_threshold heuristic over the host's available kinds.
  // Either way the kind resolves through the registry to a concrete runnable
  // variant, stored as a registry index.
  const DType dtype = experts_->dtype();
  const bool calibrated =
      !options_.force_kind.has_value() && options_.dispatch != nullptr &&
      !options_.dispatch->empty();
  std::int64_t total_rows = 0;
  std::int64_t max_group = 0;
  for (std::int64_t g = 0; g < num_groups; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    const std::int64_t te = ws->group_count[gi];
    ws->group_off[gi] = total_rows;
    ws->group_fill[gi] = 0;
    const KernelKind kind =
        options_.force_kind.has_value()
            ? *options_.force_kind
            : (calibrated ? options_.dispatch->Choose(dtype, te)
                          : SelectKernel(te, options_.ari_threshold));
    ws->group_variant[gi] = static_cast<std::int32_t>(
        KernelVariantIndex(ResolveKernelVariant(kind, options_.impl, dtype)));
    total_rows += te;
    max_group = std::max(max_group, te);
  }
  // Pass 2 also builds the per-token contribution index in routing-slot
  // order: token t's reduce sums its slots in [slot_begin, slot_end) order
  // regardless of how its experts were grouped, so the per-row result is
  // invariant to batch composition (sequential vs batched decode). Hot slots
  // keep their position in the index — a negative src points the reduce at
  // the pre-computed hot row instead of a staged cold row.
  const std::int64_t n_r = CeilDiv(tokens, kReduceBand);
  for (std::int64_t r = 0; r < n_r; ++r) {
    ws->band_remaining[static_cast<std::size_t>(r)] = 0;
  }
  for (std::int64_t t = 0; t < tokens; ++t) {
    const std::int64_t band = t / kReduceBand;
    for (int s = slot_begin; s < slot_end; ++s) {
      const std::int64_t idx = t * window + (s - slot_begin);
      if (served != nullptr && served[t * top_k + s] != 0) {
        ws->contrib_src[static_cast<std::size_t>(idx)] = -(t * top_k + s) - 1;
        ws->contrib_w[static_cast<std::size_t>(idx)] = routing.weight(t, s);
        continue;
      }
      const auto g = static_cast<std::size_t>(goe[routing.id(t, s)]);
      const std::int64_t pos = ws->group_off[g] + ws->group_fill[g]++;
      ws->token_rows[static_cast<std::size_t>(pos)] = t;
      ws->contrib_src[static_cast<std::size_t>(idx)] = pos;
      ws->contrib_w[static_cast<std::size_t>(idx)] = routing.weight(t, s);
      // Chained schedule: a reduce band waits only on its *cold*
      // contributions (hot rows are complete before Forward is called).
      ++ws->band_remaining[static_cast<std::size_t>(band)];
    }
  }
  // Restore the sentinel for the next call (touch only activated entries).
  for (std::int64_t g = 0; g < num_groups; ++g) {
    goe[ws->group_expert[static_cast<std::size_t>(g)]] = -1;
  }

  // --- Gather inputs for the staged Gate/Up rows. ---------------------------
  float* xg = ws->x_gathered.data();
  for (std::int64_t a = 0; a < total_rows; ++a) {
    std::memcpy(xg + a * hidden, x + ws->token_rows[static_cast<std::size_t>(a)] * hidden,
                static_cast<std::size_t>(hidden) * sizeof(float));
  }

  // --- Task counts and chaining countdowns. ---------------------------------
  ws->x = x;
  ws->hot_rows = hot != nullptr ? hot->rows : nullptr;
  ws->y = y;
  ws->hidden = hidden;
  ws->inter = inter;
  ws->tokens = tokens;
  ws->slots = window;
  ws->num_groups = num_groups;
  ws->nb_inter = experts_->expert(0).gate.n_blocks();
  ws->nb_hidden = experts_->expert(0).down.n_blocks();
  ws->bands_a = CeilDiv(ws->nb_inter, options_.band_blocks);
  ws->bands_b = CeilDiv(ws->nb_hidden, options_.band_blocks);
  ws->n_a = num_groups * ws->bands_a;
  ws->n_b = num_groups * ws->bands_b;
  ws->n_r = CeilDiv(tokens, kReduceBand);
  for (std::int64_t& c : ws->kind_calls) {
    c = 0;
  }
  const std::int64_t total = ws->n_a + ws->n_b + ws->n_r;

  moe_span.set_arg("subtasks", total);
  if (options_.schedule == ScheduleKind::kDynamic) {
    for (std::int64_t g = 0; g < num_groups; ++g) {
      ws->a_remaining[static_cast<std::size_t>(g)] = static_cast<std::int32_t>(ws->bands_a);
      ws->b_remaining[static_cast<std::size_t>(g)] = static_cast<std::int32_t>(ws->bands_b);
    }
    // band_remaining was filled with per-band *cold* contribution counts in
    // pass 2 (hot rows are complete before dispatch and must not be waited
    // on).
    std::memset(ws->ready.data(), 0xFF,
                static_cast<std::size_t>(ws->n_b + ws->n_r) * sizeof(std::int32_t));
    ws->ready_tail = ws->n_a;
    // A band whose every contribution is hot has no cold producer left to
    // publish its reduce task — pre-publish it here (plain stores: the pool's
    // dispatch publishes them before any worker claims a slot).
    for (std::int64_t r = 0; r < ws->n_r; ++r) {
      if (ws->band_remaining[static_cast<std::size_t>(r)] == 0) {
        ws->ready[static_cast<std::size_t>(ws->ready_tail - ws->n_a)] =
            static_cast<std::int32_t>(ws->n_a + ws->n_b + r);
        ++ws->ready_tail;
      }
    }
    pool_->ParallelRun(&ChainedBody, ws, static_cast<std::size_t>(total), /*chunk=*/1);
  } else {
    // Static: three barrier-separated phases, each block-partitioned exactly
    // like TaskQueue::Run(kStatic) / SimulateMakespan.
    const auto run_phase = [&](std::int64_t base, std::int64_t n) {
      if (n == 0) {
        return;
      }
      ws->phase_base = base;
      const std::size_t blocks =
          std::min<std::size_t>(pool_->num_threads(), static_cast<std::size_t>(n));
      const std::size_t chunk = (static_cast<std::size_t>(n) + blocks - 1) / blocks;
      pool_->ParallelRun(&StaticBody, ws, static_cast<std::size_t>(n), chunk);
    };
    run_phase(0, ws->n_a);
    run_phase(ws->n_a, ws->n_b);
    run_phase(ws->n_a + ws->n_b, ws->n_r);
  }

  // Per-variant dispatch counts: MoeStats for callers, the trace layer for
  // timeline correlation, and the global metrics registry for scraping. The
  // counter pointers are resolved once (registry lookups take a mutex).
  for (int k = 0; k < 4; ++k) {
    if (ws->kind_calls[k] != 0) {
      ws->kind_counters[k]->Add(ws->kind_calls[k]);
      KTX_TRACE_COUNTER("moe", KernelKindName(static_cast<KernelKind>(k)),
                        ws->kind_counters[k]->value());
    }
  }

  if (stats != nullptr) {
    stats->tokens += tokens;
    stats->activated_experts += static_cast<int>(num_groups);
    stats->max_tokens_per_expert = std::max(stats->max_tokens_per_expert, max_group);
    stats->subtasks += total;
    stats->amx_calls += ws->kind_calls[static_cast<int>(KernelKind::kAmx)];
    stats->avx512_calls += ws->kind_calls[static_cast<int>(KernelKind::kAvx512)];
    stats->avx2_calls += ws->kind_calls[static_cast<int>(KernelKind::kAvx2)];
    stats->scalar_calls += ws->kind_calls[static_cast<int>(KernelKind::kScalar)];
    stats->useful_flops += 6.0 * static_cast<double>(total_rows) *
                           static_cast<double>(hidden) * static_cast<double>(inter);
    stats->hot_rows += hot_count;
    stats->cold_rows += total_rows;
  }
}

void RefMoeForward(const std::vector<Tensor>& gate, const std::vector<Tensor>& up,
                   const std::vector<Tensor>& down, const float* x, std::int64_t tokens,
                   const MoeRouting& routing, int slot_begin, int slot_end, float* y) {
  const std::int64_t hidden = gate[0].dim(1);
  const std::int64_t inter = gate[0].dim(0);
  std::vector<float> g_buf(static_cast<std::size_t>(inter));
  std::vector<float> u_buf(static_cast<std::size_t>(inter));
  std::vector<float> a_buf(static_cast<std::size_t>(inter));
  std::vector<float> o_buf(static_cast<std::size_t>(hidden));
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (int s = slot_begin; s < slot_end; ++s) {
      const int e = routing.id(t, s);
      const float wgt = routing.weight(t, s);
      RefGemm(x + t * hidden, 1, hidden, gate[static_cast<std::size_t>(e)], g_buf.data(), inter);
      RefGemm(x + t * hidden, 1, hidden, up[static_cast<std::size_t>(e)], u_buf.data(), inter);
      SiluMul(g_buf.data(), u_buf.data(), a_buf.data(), inter);
      RefGemm(a_buf.data(), 1, inter, down[static_cast<std::size_t>(e)], o_buf.data(), hidden);
      AxpyInPlace(y + t * hidden, o_buf.data(), wgt, hidden);
    }
  }
}

}  // namespace ktx
