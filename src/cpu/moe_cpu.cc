#include "src/cpu/moe_cpu.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "src/common/logging.h"
#include "src/cpu/activation.h"

namespace ktx {

StatusOr<PackedExperts> PackedExperts::Pack(const std::vector<Tensor>& gate,
                                            const std::vector<Tensor>& up,
                                            const std::vector<Tensor>& down, DType dtype) {
  if (gate.empty() || gate.size() != up.size() || gate.size() != down.size()) {
    return InvalidArgumentError("PackedExperts::Pack: mismatched expert tensor lists");
  }
  PackedExperts pe;
  pe.inter_ = gate[0].dim(0);
  pe.hidden_ = gate[0].dim(1);
  pe.dtype_ = dtype;
  pe.experts_.reserve(gate.size());
  for (std::size_t e = 0; e < gate.size(); ++e) {
    if (gate[e].dim(0) != pe.inter_ || gate[e].dim(1) != pe.hidden_ ||
        up[e].dim(0) != pe.inter_ || up[e].dim(1) != pe.hidden_ ||
        down[e].dim(0) != pe.hidden_ || down[e].dim(1) != pe.inter_) {
      return InvalidArgumentError("PackedExperts::Pack: inconsistent expert shapes");
    }
    PackedExpert px;
    KTX_ASSIGN_OR_RETURN(px.gate, PackedMatrix::Pack(gate[e], dtype));
    KTX_ASSIGN_OR_RETURN(px.up, PackedMatrix::Pack(up[e], dtype));
    KTX_ASSIGN_OR_RETURN(px.down, PackedMatrix::Pack(down[e], dtype));
    pe.experts_.push_back(std::move(px));
  }
  return pe;
}

std::size_t PackedExperts::total_bytes() const {
  std::size_t total = 0;
  for (const PackedExpert& e : experts_) {
    total += e.gate.payload_bytes() + e.up.payload_bytes() + e.down.payload_bytes();
  }
  return total;
}

CpuMoe::CpuMoe(std::shared_ptr<const PackedExperts> experts, ThreadPool* pool,
               MoeOptions options)
    : experts_(std::move(experts)), pool_(pool), options_(options) {
  KTX_CHECK(experts_ != nullptr);
  KTX_CHECK(pool_ != nullptr);
  KTX_CHECK_GE(options_.band_blocks, 1);
}

namespace {

// Token rows routed to one expert within the active slot window.
struct ExpertGroup {
  int expert = -1;
  std::vector<std::int64_t> token_rows;
  std::vector<float> gate_weights;
};

}  // namespace

void CpuMoe::Forward(const float* x, std::int64_t tokens, const MoeRouting& routing,
                     int slot_begin, int slot_end, float* y, MoeStats* stats) const {
  KTX_CHECK_EQ(tokens, routing.tokens);
  KTX_CHECK(slot_begin >= 0 && slot_end <= routing.top_k && slot_begin <= slot_end);
  const std::int64_t hidden = experts_->hidden();
  const std::int64_t inter = experts_->inter();
  const int num_experts = experts_->num_experts();

  // --- Group tokens by expert over the slot window. -------------------------
  std::vector<ExpertGroup> groups;
  std::vector<int> group_of_expert(static_cast<std::size_t>(num_experts), -1);
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (int s = slot_begin; s < slot_end; ++s) {
      const int e = routing.id(t, s);
      KTX_DCHECK(e >= 0 && e < num_experts) << "bad expert id " << e;
      int g = group_of_expert[static_cast<std::size_t>(e)];
      if (g < 0) {
        g = static_cast<int>(groups.size());
        group_of_expert[static_cast<std::size_t>(e)] = g;
        groups.push_back(ExpertGroup{e, {}, {}});
      }
      groups[static_cast<std::size_t>(g)].token_rows.push_back(t);
      groups[static_cast<std::size_t>(g)].gate_weights.push_back(routing.weight(t, s));
    }
  }
  if (groups.empty()) {
    return;
  }

  // --- Stage per-group buffers: gathered inputs, activations, outputs. ------
  struct GroupBuffers {
    Tensor x_gathered;  // [t_e, hidden]
    Tensor gate_up;     // [t_e, 2*inter]: columns [0,inter) gate, [inter,2*inter) up
    Tensor act;         // [t_e, inter]
    Tensor out;         // [t_e, hidden]
    KernelKind kind = KernelKind::kAmx;
  };
  std::vector<GroupBuffers> bufs(groups.size());
  std::int64_t max_group = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::int64_t te = static_cast<std::int64_t>(groups[g].token_rows.size());
    max_group = std::max(max_group, te);
    bufs[g].x_gathered = Tensor({te, hidden}, DType::kF32);
    bufs[g].gate_up = Tensor({te, 2 * inter}, DType::kF32);
    bufs[g].act = Tensor({te, inter}, DType::kF32);
    bufs[g].out = Tensor({te, hidden}, DType::kF32);
    bufs[g].kind = options_.force_kind.value_or(SelectKernel(te, options_.ari_threshold));
    float* dst = bufs[g].x_gathered.f32();
    for (std::int64_t r = 0; r < te; ++r) {
      std::memcpy(dst + r * hidden, x + groups[g].token_rows[static_cast<std::size_t>(r)] * hidden,
                  static_cast<std::size_t>(hidden) * sizeof(float));
    }
  }

  std::atomic<std::int64_t> amx_calls{0};
  std::atomic<std::int64_t> avx_calls{0};
  TaskQueue queue(pool_);

  // --- Fused batch A: Gate+Up projections + SwiGLU, banded over `inter`. ----
  {
    std::vector<SubTask> batch;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const PackedExpert& pw = experts_->expert(groups[g].expert);
      const std::int64_t te = bufs[g].x_gathered.dim(0);
      const std::int64_t n_blocks = pw.gate.n_blocks();
      for (std::int64_t b0 = 0; b0 < n_blocks; b0 += options_.band_blocks) {
        const std::int64_t b1 = std::min(n_blocks, b0 + options_.band_blocks);
        GroupBuffers* gb = &bufs[g];
        const ExpertGroup* grp = &groups[g];
        batch.push_back(SubTask{
            [this, gb, grp, b0, b1, te, inter, &amx_calls, &avx_calls] {
              const PackedExpert& w = experts_->expert(grp->expert);
              GemmOptions opts;
              opts.kind = gb->kind;
              opts.impl = options_.impl;
              opts.nb_begin = b0;
              opts.nb_end = b1;
              float* gu = gb->gate_up.f32();
              // Gate into columns [0, inter), Up into [inter, 2*inter):
              // fused in one task so both stream the same activations.
              GemmPacked(gb->x_gathered.f32(), te, gb->x_gathered.dim(1), w.gate, gu,
                         2 * inter, opts);
              GemmPacked(gb->x_gathered.f32(), te, gb->x_gathered.dim(1), w.up, gu + inter,
                         2 * inter, opts);
              // SwiGLU for the bands this task produced.
              const std::int64_t c0 = b0 * kNBlock;
              const std::int64_t c1 = std::min(inter, b1 * kNBlock);
              for (std::int64_t r = 0; r < te; ++r) {
                SiluMul(gu + r * 2 * inter + c0, gu + r * 2 * inter + inter + c0,
                        gb->act.f32() + r * inter + c0, c1 - c0);
              }
              (gb->kind == KernelKind::kAmx ? amx_calls : avx_calls)
                  .fetch_add(2, std::memory_order_relaxed);
            },
            static_cast<double>(te * (b1 - b0))});
      }
    }
    if (stats != nullptr) {
      stats->subtasks += static_cast<std::int64_t>(batch.size());
    }
    queue.Run(std::move(batch), options_.schedule);
  }

  // --- Fused batch B: Down projection, banded over `hidden`. ----------------
  {
    std::vector<SubTask> batch;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const PackedExpert& pw = experts_->expert(groups[g].expert);
      const std::int64_t te = bufs[g].act.dim(0);
      const std::int64_t n_blocks = pw.down.n_blocks();
      for (std::int64_t b0 = 0; b0 < n_blocks; b0 += options_.band_blocks) {
        const std::int64_t b1 = std::min(n_blocks, b0 + options_.band_blocks);
        GroupBuffers* gb = &bufs[g];
        const ExpertGroup* grp = &groups[g];
        batch.push_back(SubTask{
            [this, gb, grp, b0, b1, te, &amx_calls, &avx_calls] {
              const PackedExpert& w = experts_->expert(grp->expert);
              GemmOptions opts;
              opts.kind = gb->kind;
              opts.impl = options_.impl;
              opts.nb_begin = b0;
              opts.nb_end = b1;
              GemmPacked(gb->act.f32(), te, gb->act.dim(1), w.down, gb->out.f32(),
                         gb->out.dim(1), opts);
              (gb->kind == KernelKind::kAmx ? amx_calls : avx_calls)
                  .fetch_add(1, std::memory_order_relaxed);
            },
            static_cast<double>(te * (b1 - b0))});
      }
    }
    if (stats != nullptr) {
      stats->subtasks += static_cast<std::int64_t>(batch.size());
    }
    queue.Run(std::move(batch), options_.schedule);
  }

  // --- Weighted scatter-add, banded over tokens (one writer per row). -------
  {
    // Invert the grouping: per token, the (group, row, weight) triples.
    struct Contribution {
      int group;
      std::int64_t row;
      float weight;
    };
    std::vector<std::vector<Contribution>> per_token(static_cast<std::size_t>(tokens));
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t r = 0; r < groups[g].token_rows.size(); ++r) {
        per_token[static_cast<std::size_t>(groups[g].token_rows[r])].push_back(
            Contribution{static_cast<int>(g), static_cast<std::int64_t>(r),
                         groups[g].gate_weights[r]});
      }
    }
    const std::int64_t token_band = 32;
    std::vector<SubTask> batch;
    for (std::int64_t t0 = 0; t0 < tokens; t0 += token_band) {
      const std::int64_t t1 = std::min(tokens, t0 + token_band);
      batch.push_back(SubTask{[&per_token, &bufs, y, hidden, t0, t1] {
                                for (std::int64_t t = t0; t < t1; ++t) {
                                  for (const Contribution& c :
                                       per_token[static_cast<std::size_t>(t)]) {
                                    AxpyInPlace(y + t * hidden,
                                                bufs[static_cast<std::size_t>(c.group)].out.f32() +
                                                    c.row * hidden,
                                                c.weight, hidden);
                                  }
                                }
                              },
                              static_cast<double>(t1 - t0)});
    }
    queue.Run(std::move(batch), options_.schedule);
  }

  if (stats != nullptr) {
    stats->tokens += tokens;
    stats->activated_experts += static_cast<int>(groups.size());
    stats->max_tokens_per_expert = std::max(stats->max_tokens_per_expert, max_group);
    stats->amx_calls += amx_calls.load();
    stats->avx512_calls += avx_calls.load();
    double flops = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      flops += 6.0 * static_cast<double>(bufs[g].x_gathered.dim(0)) *
               static_cast<double>(hidden) * static_cast<double>(inter);
    }
    stats->useful_flops += flops;
  }
}

void RefMoeForward(const std::vector<Tensor>& gate, const std::vector<Tensor>& up,
                   const std::vector<Tensor>& down, const float* x, std::int64_t tokens,
                   const MoeRouting& routing, int slot_begin, int slot_end, float* y) {
  const std::int64_t hidden = gate[0].dim(1);
  const std::int64_t inter = gate[0].dim(0);
  std::vector<float> g_buf(static_cast<std::size_t>(inter));
  std::vector<float> u_buf(static_cast<std::size_t>(inter));
  std::vector<float> a_buf(static_cast<std::size_t>(inter));
  std::vector<float> o_buf(static_cast<std::size_t>(hidden));
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (int s = slot_begin; s < slot_end; ++s) {
      const int e = routing.id(t, s);
      const float wgt = routing.weight(t, s);
      RefGemm(x + t * hidden, 1, hidden, gate[static_cast<std::size_t>(e)], g_buf.data(), inter);
      RefGemm(x + t * hidden, 1, hidden, up[static_cast<std::size_t>(e)], u_buf.data(), inter);
      SiluMul(g_buf.data(), u_buf.data(), a_buf.data(), inter);
      RefGemm(a_buf.data(), 1, inter, down[static_cast<std::size_t>(e)], o_buf.data(), hidden);
      AxpyInPlace(y + t * hidden, o_buf.data(), wgt, hidden);
    }
  }
}

}  // namespace ktx
