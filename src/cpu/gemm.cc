#include "src/cpu/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/align.h"
#include "src/common/logging.h"
#include "src/cpu/gemm_scratch.h"
#include "src/cpu/kernel_registry.h"

namespace ktx {

namespace {

// Portable tile-emulated kernel, bf16 weights. The loop structure mirrors
// Fig. 6: N-band tasks, K streamed in tile-sized blocks, accumulation in the
// (emulated) tile register.
void EmulatedGemmBf16(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                      std::int64_t nb1) {
  const std::int64_t n = w.n();
  const std::int64_t k = w.k();
  for (std::int64_t m0 = 0; m0 < m; m0 += kTileRows) {
    const int rows = static_cast<int>(std::min<std::int64_t>(kTileRows, m - m0));
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      AccTile acc;
      acc.Zero();
      for (std::int64_t kb = 0; kb < w.k_blocks(); ++kb) {
        TileReg a;
        BuildActivationTileBf16(x + m0 * ldx, ldx, rows, kb * kKBlockBf16, k, &a);
        TileReg b;
        b.Load(w.tile_ptr(nb, kb), kTileBytesPerRow);
        TdpBf16Ps(acc, a, b, rows);
      }
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, n - nb * kNBlock);
      for (int i = 0; i < rows; ++i) {
        float* out = y + (m0 + i) * ldy + nb * kNBlock;
        for (std::int64_t j = 0; j < n_valid; ++j) {
          out[j] = accumulate ? out[j] + acc.f32[i][j] : acc.f32[i][j];
        }
      }
    }
  }
}

// Portable f32 kernel on the k-major kF32 tile layout (layout.h). There is
// exactly one canonical op sequence for f32 — per output lane, ascending k,
// one fused multiply-add per step — and every backend (this scalar loop via
// std::fma, the AVX-512 and AVX2 kernels via vfmadd) performs it identically,
// so all tiers produce bit-identical results. That identity is what lets the
// expert cache serve a GPU-resident hot replica of an f32 expert without
// perturbing the logits relative to the unplaced baseline.
void EmulatedGemmF32(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                     float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                     std::int64_t nb1) {
  const std::int64_t n = w.n();
  const std::int64_t k = w.k();
  const std::int64_t k_blocks = w.k_blocks();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      float acc[kNBlock] = {};
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const auto* tile = reinterpret_cast<const float*>(w.tile_ptr(nb, kb));
        const std::int64_t p_valid =
            std::min<std::int64_t>(kKBlockF32, k - kb * kKBlockF32);
        for (std::int64_t p = 0; p < p_valid; ++p) {
          const float xv = row[kb * kKBlockF32 + p];
          for (int j = 0; j < kNBlock; ++j) {
            acc[j] = std::fma(xv, tile[p * kNBlock + j], acc[j]);
          }
        }
      }
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, n - n0);
      float* out = y + i * ldy + n0;
      for (std::int64_t j = 0; j < n_valid; ++j) {
        out[j] = accumulate ? out[j] + acc[j] : acc[j];
      }
    }
  }
}

// Portable tile-emulated kernel, int8/int4 weights with per-(row, k-block)
// scales. The i32 tile is rescaled into the f32 accumulator after every
// k-block because scales change across blocks. The rescale is the canonical
// mul/mul/add sequence every native kernel mirrors; this translation unit is
// built with -ffp-contract=off so the compiler cannot fuse it.
void EmulatedGemmInt8(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                      std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  const std::int64_t n = w.n();
  const std::int64_t k = w.k();
  const std::int64_t k_blocks = w.k_blocks();
  const std::size_t need =
      static_cast<std::size_t>(kTileRows * k_blocks) * sizeof(float) + kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  float* x_scales = carver.Take<float>(static_cast<std::size_t>(kTileRows * k_blocks));
  for (std::int64_t m0 = 0; m0 < m; m0 += kTileRows) {
    const int rows = static_cast<int>(std::min<std::int64_t>(kTileRows, m - m0));
    ComputeActivationScalesInt8(x + m0 * ldx, rows, ldx, k, w.k_block(), x_scales);
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      AccTile acc;
      acc.Zero();
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        float row_scales[kTileRows] = {};
        for (int i = 0; i < rows; ++i) {
          row_scales[i] = x_scales[i * k_blocks + kb];
        }
        TileReg a;
        BuildActivationTileInt8(x + m0 * ldx, ldx, rows, kb * kKBlockInt8, k, row_scales, &a);
        TileReg b;
        if (w.dtype() == DType::kI8) {
          b.Load(w.tile_ptr(nb, kb), kTileBytesPerRow);
        } else {
          UnpackInt4Tile(w.tile_ptr(nb, kb), &b);
        }
        AccTile tmp;
        tmp.Zero();
        TdpBssd(tmp, a, b, rows);
        const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, n - nb * kNBlock);
        const std::int32_t* ti = tmp.i32();
        for (int i = 0; i < rows; ++i) {
          for (std::int64_t j = 0; j < n_valid; ++j) {
            const float t1 = static_cast<float>(ti[i * kNBlock + j]) * row_scales[i];
            const float t2 = t1 * w.scale(nb * kNBlock + j, kb);
            acc.f32[i][j] += t2;
          }
        }
      }
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, n - nb * kNBlock);
      for (int i = 0; i < rows; ++i) {
        float* out = y + (m0 + i) * ldy + nb * kNBlock;
        for (std::int64_t j = 0; j < n_valid; ++j) {
          out[j] = accumulate ? out[j] + acc.f32[i][j] : acc.f32[i][j];
        }
      }
    }
  }
}

}  // namespace

void EmulatedGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                  float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                  std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  if (w.dtype() == DType::kF32) {
    EmulatedGemmF32(x, m, ldx, w, y, ldy, accumulate, nb0, nb1);
  } else if (w.dtype() == DType::kBF16) {
    EmulatedGemmBf16(x, m, ldx, w, y, ldy, accumulate, nb0, nb1);
  } else {
    EmulatedGemmInt8(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  }
}

void* GemmThreadScratch(std::size_t bytes) {
  // Grow-only, doubling: at most O(log max-demand) allocations per thread.
  thread_local AlignedBuffer buf;
  if (buf.size() < bytes) {
    buf = AlignedBuffer(std::max(bytes, buf.size() * 2));
  }
  return buf.data();
}

void GemmPacked(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                float* y, std::int64_t ldy, const GemmOptions& opts) {
  if (m <= 0 || w.n() <= 0) {
    return;
  }
  const std::int64_t nb0 = opts.nb_begin;
  const std::int64_t nb1 = opts.nb_end < 0 ? w.n_blocks() : opts.nb_end;
  KTX_CHECK(nb0 >= 0 && nb1 <= w.n_blocks() && nb0 <= nb1) << "bad n-block range";
  const KernelVariant& v = ResolveKernelVariant(opts.kind, opts.impl, w.dtype());
  v.gemm(x, m, ldx, w, y, ldy, opts.accumulate, nb0, nb1, opts.scratch, opts.scratch_bytes);
}

void RefGemm(const float* x, std::int64_t m, std::int64_t ldx, const Tensor& w, float* y,
             std::int64_t ldy, bool accumulate) {
  KTX_CHECK(w.rank() == 2 && w.dtype() == DType::kF32);
  const std::int64_t n = w.dim(0);
  const std::int64_t k = w.dim(1);
  const float* wp = w.f32();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const float* xr = x + i * ldx;
      const float* wr = wp + j * k;
      for (std::int64_t c = 0; c < k; ++c) {
        acc += static_cast<double>(xr[c]) * wr[c];
      }
      float* out = y + i * ldy + j;
      *out = accumulate ? *out + static_cast<float>(acc) : static_cast<float>(acc);
    }
  }
}

}  // namespace ktx
