#include "src/cpu/tile.h"

#include <cmath>

namespace ktx {

void TileReg::Load(const void* base, int stride_bytes, int rows, int bytes_per_row) {
  const auto* src = static_cast<const std::uint8_t*>(base);
  for (int r = 0; r < rows; ++r) {
    std::memcpy(data[r], src + static_cast<std::ptrdiff_t>(r) * stride_bytes,
                static_cast<std::size_t>(bytes_per_row));
  }
  for (int r = rows; r < kTileRows; ++r) {
    std::memset(data[r], 0, kTileBytesPerRow);
  }
  if (bytes_per_row < kTileBytesPerRow) {
    for (int r = 0; r < rows; ++r) {
      std::memset(data[r] + bytes_per_row, 0,
                  static_cast<std::size_t>(kTileBytesPerRow - bytes_per_row));
    }
  }
}

void TdpBf16Ps(AccTile& c, const TileReg& a, const TileReg& b, int a_rows) {
  // A row i: 32 bf16 values (pairs p=0..15, r=0..1 at column 2p+r).
  // B row p: 16 bf16 pairs, pair j at columns 2j, 2j+1.
  //
  // Canonical op sequence (matches the TDPBF16PS silicon, measured): per
  // instruction the even-index products and odd-index products accumulate in
  // two separate f32 chains over ascending p, and the accumulator absorbs
  // their sum with two rounded adds: c += (sum_even + sum_odd). Each product
  // of two bf16 values is exact in f32 (8-bit mantissae), so an fma chain and
  // a mul-then-add chain are the same rounded sequence; std::fma keeps this
  // explicit and compiler-proof. Every vector kernel reproduces exactly this
  // sequence, which is what makes all kernel variants bit-identical.
  const auto* a_bf16 = reinterpret_cast<const std::uint16_t*>(a.data);
  const auto* b_bf16 = reinterpret_cast<const std::uint16_t*>(b.data);
  for (int i = 0; i < a_rows; ++i) {
    for (int j = 0; j < kNBlock; ++j) {
      float se = 0.0f;
      float so = 0.0f;
      for (int p = 0; p < kTileRows; ++p) {
        const float ae = BF16ToFloat(BF16{a_bf16[i * 32 + 2 * p]});
        const float ao = BF16ToFloat(BF16{a_bf16[i * 32 + 2 * p + 1]});
        const float be = BF16ToFloat(BF16{b_bf16[p * 32 + 2 * j]});
        const float bo = BF16ToFloat(BF16{b_bf16[p * 32 + 2 * j + 1]});
        se = std::fma(ae, be, se);
        so = std::fma(ao, bo, so);
      }
      c.f32[i][j] += se + so;
    }
  }
}

void TdpBssd(AccTile& c, const TileReg& a, const TileReg& b, int a_rows) {
  const auto* a_i8 = reinterpret_cast<const std::int8_t*>(a.data);
  const auto* b_i8 = reinterpret_cast<const std::int8_t*>(b.data);
  std::int32_t* ci = c.i32();
  for (int i = 0; i < a_rows; ++i) {
    for (int j = 0; j < kNBlock; ++j) {
      std::int32_t acc = ci[i * kNBlock + j];
      for (int p = 0; p < kTileRows; ++p) {
        for (int r = 0; r < 4; ++r) {
          acc += static_cast<std::int32_t>(a_i8[i * 64 + 4 * p + r]) *
                 static_cast<std::int32_t>(b_i8[p * 64 + 4 * j + r]);
        }
      }
      ci[i * kNBlock + j] = acc;
    }
  }
}

}  // namespace ktx
