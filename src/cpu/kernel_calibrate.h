// Microbenchmark-calibrated kernel dispatch (the measured replacement for the
// fixed ari_threshold heuristic; paper §3.2 / Fig. 7).
//
// The paper picks the AMX-vs-AVX-512 crossover at 4 tokens per expert from
// one machine's measurements. That constant is wrong on any host with a
// different AMX:vector throughput ratio and meaningless on hosts missing
// either ISA. KernelCalibrator instead measures every dispatchable variant
// over a small tokens-per-expert grid at startup, fits per-dtype-class
// crossover segments, and caches the result as a JSON profile under configs/
// so serving restarts skip the microbenchmark entirely.
//
// Because every registered variant is bit-identical (kernel_registry.h), the
// calibrated table is purely a performance decision: switching variants
// mid-stream can never change a logit.
//
// Profile file format (version 1):
//   {
//     "version": 1,
//     "signature": "<cpu features + build + grid + shape>",
//     "grid": [1, 2, ...],
//     "shape": {"n": .., "k": ..},
//     "measurements": [
//       {"variant": "amx_native", "dtype": "bf16", "m": 1, "ns_per_call": ..},
//       ...
//     ],
//     "table": {
//       "f32":  [{"min_m": 1, "kind": "avx512"}, ...],
//       "bf16": [{"min_m": 1, "kind": "avx512"}, {"min_m": 5, "kind": "amx"}],
//       "quant": [...]
//     }
//   }
// A missing file, unparseable JSON, wrong version, or signature mismatch
// (different CPU, build, grid, or shape) logs a warning and falls back to
// recalibration — never an abort — and the fresh result rewrites the profile.

#ifndef KTX_SRC_CPU_KERNEL_CALIBRATE_H_
#define KTX_SRC_CPU_KERNEL_CALIBRATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/kernel_registry.h"
#include "src/tensor/dtype.h"

namespace ktx {

// Piecewise-constant winner-per-tokens-per-expert table, one segment list per
// dtype class (f32 / bf16 / quantized). Segments are sorted by ascending
// min_m; Choose returns the kind of the last segment whose min_m <= m.
struct KernelDispatchTable {
  struct Segment {
    std::int64_t min_m = 1;
    KernelKind kind = KernelKind::kScalar;
  };
  std::vector<Segment> f32;
  std::vector<Segment> bf16;
  std::vector<Segment> quant;

  const std::vector<Segment>& ForDType(DType dtype) const {
    if (dtype == DType::kF32) {
      return f32;
    }
    return dtype == DType::kBF16 ? bf16 : quant;
  }

  // The calibrated kernel switch. Falls back to the availability-aware
  // SelectKernel heuristic when this dtype class has no segments.
  KernelKind Choose(DType dtype, std::int64_t tokens_per_expert) const;

  bool empty() const { return f32.empty() && bf16.empty() && quant.empty(); }
};

// One timed point: `variant` is a registry entry name.
struct KernelMeasurement {
  std::string variant;
  DType dtype = DType::kBF16;
  std::int64_t m = 0;
  double ns_per_call = 0.0;
};

struct KernelCalibrationOptions {
  // Tokens-per-expert grid. Decode-dense at the bottom (the region the fixed
  // threshold gets wrong), sparse above where the winner is stable.
  std::vector<std::int64_t> grid = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
  // Microbenchmark GEMM shape: one expert-sized band. Small enough to finish
  // in milliseconds, large enough that per-call overhead does not dominate.
  std::int64_t n = 256;
  std::int64_t k = 256;
  // The microbenchmark issues the GEMM as band-restricted calls of this many
  // 16-wide n-blocks — the exact granularity the MoE task scheduler uses
  // (MoeOptions::band_blocks). Timing whole-matrix calls instead would hide
  // the per-call setup cost (AMX tile config) that decides the small-m winner
  // on the real hot path.
  std::int64_t band_blocks = 4;
  int reps = 5;         // timed repetitions per point; minimum is kept
  int warmup = 1;       // untimed calls per point before the reps
  std::string profile_path;  // empty: never read or write a cache file
};

struct KernelCalibrationResult {
  KernelDispatchTable table;
  bool from_cache = false;          // true: profile satisfied the request
  std::int64_t microbench_samples = 0;  // timed GEMM calls; 0 when from_cache
  std::vector<KernelMeasurement> measurements;
  std::string signature;
};

// The cache-validity signature: CPU feature string + native-SIMD build flag +
// grid + microbenchmark shape + format version. Any difference invalidates a
// stored profile.
std::string KernelProfileSignature(const KernelCalibrationOptions& opts);

// Runs the microbenchmark over every dispatchable variant and fits the
// crossover table. Never touches the profile file.
KernelCalibrationResult CalibrateKernels(const KernelCalibrationOptions& opts);

// Loads `opts.profile_path` if it exists, parses, and checks the signature;
// on any failure logs a warning, recalibrates, and (re)writes the profile.
// With an empty profile_path this is exactly CalibrateKernels.
KernelCalibrationResult CalibrateOrLoad(const KernelCalibrationOptions& opts);

// Serializes `result` to `path` (JsonWriter format above). Returns false on
// I/O failure (logged, non-fatal).
bool WriteKernelProfile(const KernelCalibrationResult& result,
                        const KernelCalibrationOptions& opts, const std::string& path);

// Parses a profile from `text`. Returns false (with a reason in `why`) on
// malformed JSON, version/signature mismatch, or unknown kind names.
bool ParseKernelProfile(const std::string& text, const std::string& expected_signature,
                        KernelCalibrationResult* out, std::string* why);

}  // namespace ktx

#endif  // KTX_SRC_CPU_KERNEL_CALIBRATE_H_
