// Internal scratch-carving helper shared by the GEMM kernel translation units.
//
// The kernels need small per-call temporaries (repacked activation rows,
// quantization scales, emulated tile registers). On the zero-allocation decode
// path these live in a per-worker region the MoE workspace owns and passes in
// through GemmOptions::scratch; ScratchCarver slices that region into typed,
// 64-byte-aligned runs. Direct callers that pass no scratch fall back to the
// grow-only thread-local buffer behind GemmThreadScratch().

#ifndef KTX_SRC_CPU_GEMM_SCRATCH_H_
#define KTX_SRC_CPU_GEMM_SCRATCH_H_

#include <cstddef>
#include <cstdint>

#include "src/common/align.h"
#include "src/common/logging.h"
#include "src/cpu/gemm.h"

namespace ktx {

class ScratchCarver {
 public:
  ScratchCarver(void* base, std::size_t bytes)
      : p_(static_cast<std::uint8_t*>(base)), end_(p_ + bytes) {}

  // Returns a 64-byte-aligned run of `count` Ts. The contents are
  // unspecified — every kernel fully overwrites what it reads. Capacity is the
  // caller's contract (GemmScratchBytes bounds every kernel's demand).
  template <typename T>
  T* Take(std::size_t count) {
    auto addr = reinterpret_cast<std::uintptr_t>(p_);
    addr = (addr + (kCacheLineBytes - 1)) & ~std::uintptr_t{kCacheLineBytes - 1};
    auto* out = reinterpret_cast<std::uint8_t*>(addr);
    KTX_CHECK(out + count * sizeof(T) <= end_) << "gemm scratch region overflow";
    p_ = out + count * sizeof(T);
    return reinterpret_cast<T*>(out);
  }

 private:
  std::uint8_t* p_;
  std::uint8_t* end_;
};

// Picks the caller-provided region when it is large enough, otherwise the
// thread-local fallback. `need` is the calling kernel's own requirement and is
// always <= GemmScratchBytes(w).
inline ScratchCarver AcquireGemmScratch(void* scratch, std::size_t scratch_bytes,
                                        std::size_t need) {
  if (scratch == nullptr || scratch_bytes < need) {
    return ScratchCarver(GemmThreadScratch(need), need);
  }
  return ScratchCarver(scratch, scratch_bytes);
}

}  // namespace ktx

#endif  // KTX_SRC_CPU_GEMM_SCRATCH_H_
