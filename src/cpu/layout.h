// AMX tiling-aware memory layout (paper §3.2).
//
// Expert weight matrices are preprocessed at load time into AMX-compatible
// sub-matrices so inference performs no transposition or reshaping:
//
//   * W[n][k] is partitioned into (16-output x k_block) tiles; each tile is
//     stored contiguously in the VNNI ordering the TDP* instructions consume
//     (tile.h documents the exact mapping);
//   * tiles are 64-byte aligned and laid out k-major within an n-block so one
//     task streams a whole L2-resident block of K before touching the next
//     row band (Fig. 6 steps 2-4);
//   * Int8/Int4 use symmetric per-(row, k-block) linear quantization with the
//     scale factors stored in a separate f32 array, keeping the quantized
//     payload exactly tile-sized and aligned;
//   * Int4 packs two values per byte and is unpacked to an Int8 tile on load.
//
// The same layout feeds both the AMX kernel and the AVX-512 kernel, which is
// what makes the ARI-based dispatch (gemm.h) a pure runtime decision.

#ifndef KTX_SRC_CPU_LAYOUT_H_
#define KTX_SRC_CPU_LAYOUT_H_

#include <cstdint>

#include "src/common/align.h"
#include "src/common/status.h"
#include "src/cpu/tile.h"
#include "src/tensor/tensor.h"

namespace ktx {

class PackedMatrix {
 public:
  PackedMatrix() = default;

  // Packs a rank-2 f32 weight matrix W[n][k] into tiles of `dtype`
  // (kF32, kBF16, kI8 or kI4). kF32 keeps full precision: its tiles hold the
  // weights k-major (tile[p*16 + j] = W[n0+j][k0+p]) so a GEMV streams one
  // 64-byte row of 16 outputs per k step — the layout every f32 kernel
  // (scalar, AVX2, AVX-512) walks in the same per-output k order, which is
  // what makes the f32 path bit-exact across implementations (gemm.h).
  static StatusOr<PackedMatrix> Pack(const Tensor& w, DType dtype);

  std::int64_t n() const { return n_; }
  std::int64_t k() const { return k_; }
  DType dtype() const { return dtype_; }
  int k_block() const { return k_block_; }
  std::int64_t n_blocks() const { return n_blocks_; }
  std::int64_t k_blocks() const { return k_blocks_; }
  std::size_t tile_bytes() const { return tile_bytes_; }
  std::size_t payload_bytes() const { return tiles_.size(); }
  bool quantized() const { return dtype_ == DType::kI8 || dtype_ == DType::kI4; }

  const std::uint8_t* tile_ptr(std::int64_t nb, std::int64_t kb) const {
    return reinterpret_cast<const std::uint8_t*>(tiles_.data()) +
           (nb * k_blocks_ + kb) * static_cast<std::int64_t>(tile_bytes_);
  }

  // Quantization scale for output row `nrow` within k-block `kb`.
  float scale(std::int64_t nrow, std::int64_t kb) const {
    return scales_.f32()[nrow * k_blocks_ + kb];
  }
  const Tensor& scales() const { return scales_; }

  // Sum of quantized weights within (row, k-block); used by VPDPBUSD-style
  // kernels to correct for the unsigned-activation offset.
  std::int32_t col_sum(std::int64_t nrow, std::int64_t kb) const {
    return col_sums_.i32()[nrow * k_blocks_ + kb];
  }

  // Reconstructs the logical f32 matrix (tests / reference math).
  Tensor Unpack() const;

 private:
  std::int64_t n_ = 0;
  std::int64_t k_ = 0;
  DType dtype_ = DType::kBF16;
  int k_block_ = kKBlockBf16;
  std::int64_t n_blocks_ = 0;
  std::int64_t k_blocks_ = 0;
  std::size_t tile_bytes_ = kTileBytes;
  AlignedBuffer tiles_;
  Tensor scales_;    // [n, k_blocks] f32, quantized dtypes only
  Tensor col_sums_;  // [n, k_blocks] i32, quantized dtypes only
};

// Builds an A tile (activations) from f32 rows: rows [m0, m0+rows) of x,
// columns [k0, k0+k_block). Values are converted to bf16 (round-to-nearest-
// even), zero-padded to full tile size.
void BuildActivationTileBf16(const float* x, std::int64_t ldx, int rows, std::int64_t k0,
                             std::int64_t k_valid, TileReg* tile);

// Int8 activation quantization for one tile: each row is quantized against
// `scales[i]` (precomputed per token per k-block).
void BuildActivationTileInt8(const float* x, std::int64_t ldx, int rows, std::int64_t k0,
                             std::int64_t k_valid, const float* scales, TileReg* tile);

// Per-token, per-k-block symmetric activation scales: amax/127 over each
// 64-wide block. `scales` has shape [m][k_blocks].
void ComputeActivationScalesInt8(const float* x, std::int64_t m, std::int64_t ldx,
                                 std::int64_t k, int k_block, float* scales);

// Unpacks an Int4 tile (512 B) into an Int8 TileReg (the paper's SIMD nibble
// unpack; here portable scalar).
void UnpackInt4Tile(const std::uint8_t* packed, TileReg* tile);

// Worst-case |y - y_exact| for one quantized-GEMM output element: row `nrow`
// of `w` against activation row `x` (length k). Per k-block, weight rounding
// contributes 0.5 * scale_w * sum|x| (the per-element MaxQuantError bound of
// quant.h applied to the packed per-(row, k-block) scales) and the kernels'
// int8 activation quantization contributes 0.5 * (amax_x / 127) * sum|w_hat|
// over the dequantized weights. This is the documented SNR budget for the
// 4-bit cold-expert path: tests assert the quantized GEMM, and the
// end-to-end cold-expert logits, stay inside the accumulated bound.
// `w` must be quantized (kI8 or kI4). O(n * k): test/diagnostic use.
float QuantGemvErrorBound(const PackedMatrix& w, const float* x, std::int64_t nrow);

}  // namespace ktx

#endif  // KTX_SRC_CPU_LAYOUT_H_
