#include "src/cpu/kernel_registry.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "src/common/align.h"
#include "src/common/logging.h"
#include "src/cpu/amx_native.h"
#include "src/cpu/cpu_features.h"
#include "src/cpu/tile.h"

namespace ktx {

namespace {

bool AlwaysAvailable() { return true; }

bool AllDtypes(DType) { return true; }

// The AMX tile ISA has no f32 matmul instruction; everything else packs.
bool AmxDtypes(DType dtype) { return dtype != DType::kF32; }

// --- per-variant kernel entry points (dtype branches live HERE, not in the
// --- MoE operator) -----------------------------------------------------------

void Avx512VariantGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                       float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                       std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  if (w.dtype() == DType::kF32) {
    NativeAvx512GemmF32(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  } else {
    NativeAvx512Gemm(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  }
}

void Avx2VariantGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                     float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                     std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  if (w.dtype() == DType::kF32) {
    NativeAvx2GemmF32(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  } else if (w.dtype() == DType::kBF16) {
    NativeAvx2GemmBf16(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  } else {
    NativeAvx2GemmInt8(x, m, ldx, w, y, ldy, accumulate, nb0, nb1, scratch, scratch_bytes);
  }
}

// --- per-variant scratch demands (pure arithmetic, valid in every build) -----
// One kCacheLineBytes of slop per ScratchCarver::Take covers carve alignment.

std::size_t PortableScratchBytes(const PackedMatrix& w) {
  if (!w.quantized()) {
    return 0;  // bf16/f32 emulation carves nothing
  }
  const auto kb = static_cast<std::size_t>(w.k_blocks());
  return kb * kTileRows * sizeof(float) + kCacheLineBytes;  // x_scales
}

std::size_t AmxScratchBytes(const PackedMatrix& w) {
  const auto kb = static_cast<std::size_t>(w.k_blocks());
  // a_tiles + x_scales (both carved regardless of dtype).
  return kb * sizeof(TileReg) + kb * kTileRows * sizeof(float) + 2 * kCacheLineBytes;
}

std::size_t RowKernelScratchBytes(const PackedMatrix& w) {
  const auto kb = static_cast<std::size_t>(w.k_blocks());
  if (w.dtype() == DType::kF32) {
    return 0;
  }
  if (w.dtype() == DType::kBF16) {
    // One repacked bf16 activation row, k padded to full blocks.
    return kb * kKBlockBf16 * sizeof(std::uint16_t) + kCacheLineBytes;
  }
  // Quantized: per-block scales + one quantized activation row.
  return kb * sizeof(float) + kb * static_cast<std::size_t>(kKBlockInt8) +
         2 * kCacheLineBytes;
}

constexpr KernelKind kTierOrder[] = {KernelKind::kAmx, KernelKind::kAvx512,
                                     KernelKind::kAvx2};

int TierOf(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAmx:
      return 0;
    case KernelKind::kAvx512:
      return 1;
    case KernelKind::kAvx2:
      return 2;
    case KernelKind::kScalar:
      return 3;
  }
  return 3;
}

const KernelVariant& ScalarVariant() { return KernelRegistry().back(); }

const KernelVariant* EmulatedEntryFor(KernelKind kind) {
  if (kind == KernelKind::kAvx2 || kind == KernelKind::kScalar) {
    return &ScalarVariant();
  }
  return FindKernelVariant(kind, KernelImpl::kEmulated);
}

}  // namespace

const std::vector<KernelVariant>& KernelRegistry() {
  // Order: natives by descending tier, then emulations, scalar last (so
  // ScalarVariant() == back()). Indexes are stable for the process lifetime.
  static const std::vector<KernelVariant> registry = {
      {KernelKind::kAmx, KernelImpl::kNative, "amx_native", &NativeAmxAvailable, &AmxDtypes,
       &NativeAmxGemm, &AmxScratchBytes},
      {KernelKind::kAvx512, KernelImpl::kNative, "avx512_native", &NativeAvx512Available,
       &AllDtypes, &Avx512VariantGemm, &RowKernelScratchBytes},
      {KernelKind::kAvx2, KernelImpl::kNative, "avx2_native", &NativeAvx2Available,
       &AllDtypes, &Avx2VariantGemm, &RowKernelScratchBytes},
      {KernelKind::kAmx, KernelImpl::kEmulated, "amx_emulated", &AlwaysAvailable, &AllDtypes,
       &EmulatedGemm, &PortableScratchBytes},
      {KernelKind::kAvx512, KernelImpl::kEmulated, "avx512_emulated", &AlwaysAvailable,
       &AllDtypes, &EmulatedGemm, &PortableScratchBytes},
      {KernelKind::kScalar, KernelImpl::kEmulated, "scalar", &AlwaysAvailable, &AllDtypes,
       &EmulatedGemm, &PortableScratchBytes},
  };
  return registry;
}

const KernelVariant* FindKernelVariant(KernelKind kind, KernelImpl impl) {
  for (const KernelVariant& v : KernelRegistry()) {
    if (v.kind == kind && v.impl == impl) {
      return &v;
    }
  }
  return nullptr;
}

int KernelVariantIndex(const KernelVariant& v) {
  return static_cast<int>(&v - KernelRegistry().data());
}

const KernelVariant& ResolveKernelVariant(KernelKind kind, KernelImpl impl, DType dtype) {
  if (kind == KernelKind::kScalar) {
    return ScalarVariant();  // one portable implementation, always runnable
  }
  if (impl == KernelImpl::kEmulated) {
    const KernelVariant* e = EmulatedEntryFor(kind);
    KTX_CHECK(e != nullptr);
    return *e;
  }
  const KernelVariant* exact = FindKernelVariant(kind, KernelImpl::kNative);
  if (impl == KernelImpl::kNative) {
    KTX_CHECK(exact != nullptr);
    if (exact->supports_dtype(dtype)) {
      KTX_CHECK(exact->available()) << "native kernel requested but unavailable";
      return *exact;
    }
    // The requested tier has no kernel for this dtype (f32 on AMX): the next
    // native tier down that does, else the portable path — f32 is bit-exact
    // across every tier, so this never changes results.
    for (KernelKind k : kTierOrder) {
      if (TierOf(k) <= TierOf(kind)) {
        continue;
      }
      const KernelVariant* v = FindKernelVariant(k, KernelImpl::kNative);
      if (v != nullptr && v->available() && v->supports_dtype(dtype)) {
        return *v;
      }
    }
    return ScalarVariant();
  }
  // kAuto: exact native first, then the down-tier ladder of available
  // natives, then the emulation under the requested kind's label.
  if (exact != nullptr && exact->available() && exact->supports_dtype(dtype)) {
    return *exact;
  }
  for (KernelKind k : kTierOrder) {
    if (TierOf(k) <= TierOf(kind)) {
      continue;
    }
    const KernelVariant* v = FindKernelVariant(k, KernelImpl::kNative);
    if (v != nullptr && v->available() && v->supports_dtype(dtype)) {
      return *v;
    }
  }
  const KernelVariant* e = EmulatedEntryFor(kind);
  KTX_CHECK(e != nullptr);
  return *e;
}

KernelAvailability KernelAvailability::Host() {
  KernelAvailability a;
  a.amx = NativeAmxAvailable();
  a.avx512 = NativeAvx512Available();
  a.avx2 = NativeAvx2Available();
  return a;
}

KernelKind SelectKernelWith(std::int64_t tokens_per_expert, std::int64_t threshold,
                            const KernelAvailability& avail) {
  if (avail.amx && tokens_per_expert > threshold) {
    return KernelKind::kAmx;
  }
  if (avail.avx512) {
    return KernelKind::kAvx512;
  }
  if (avail.avx2) {
    return KernelKind::kAvx2;
  }
  if (avail.amx) {
    return KernelKind::kAmx;  // tile kernel beats scalar even at low m
  }
  return KernelKind::kScalar;
}

KernelKind SelectKernel(std::int64_t tokens_per_expert, std::int64_t threshold) {
  return SelectKernelWith(tokens_per_expert, threshold, KernelAvailability::Host());
}

bool KernelAvailable(KernelKind kind, KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kEmulated:
    case KernelImpl::kAuto:
      return true;
    case KernelImpl::kNative: {
      if (kind == KernelKind::kScalar) {
        return true;  // the portable path is its own "native"
      }
      const KernelVariant* v = FindKernelVariant(kind, KernelImpl::kNative);
      return v != nullptr && v->available();
    }
  }
  return false;
}

std::size_t GemmScratchBytes(const PackedMatrix& w) {
  // Registry-wide max: a region of this size satisfies EVERY variant, so the
  // thread-local heap fallback in AcquireGemmScratch can never fire on a
  // zero-allocation path regardless of which variant dispatch picks.
  std::size_t bytes = 0;
  for (const KernelVariant& v : KernelRegistry()) {
    if (v.supports_dtype(w.dtype())) {
      bytes = std::max(bytes, v.scratch_bytes(w));
    }
  }
  return bytes;
}

const char* KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAmx:
      return "amx";
    case KernelKind::kAvx512:
      return "avx512";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kScalar:
      return "scalar";
  }
  return "?";
}

const char* KernelImplName(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kAuto:
      return "auto";
    case KernelImpl::kEmulated:
      return "emulated";
    case KernelImpl::kNative:
      return "native";
  }
  return "?";
}

std::optional<ForcedKernel> ParseForcedKernel(std::string_view name) {
  for (const KernelVariant& v : KernelRegistry()) {
    if (name == v.name) {
      return ForcedKernel{v.kind, v.impl};
    }
  }
  if (name == "amx") {
    return ForcedKernel{KernelKind::kAmx, KernelImpl::kAuto};
  }
  if (name == "avx512") {
    return ForcedKernel{KernelKind::kAvx512, KernelImpl::kAuto};
  }
  if (name == "avx2") {
    return ForcedKernel{KernelKind::kAvx2, KernelImpl::kAuto};
  }
  return std::nullopt;
}

std::optional<ForcedKernel> ForcedKernelFromEnv() {
  const char* env = std::getenv("KTX_FORCE_KERNEL");
  if (env == nullptr || *env == '\0') {
    return std::nullopt;
  }
  std::optional<ForcedKernel> forced = ParseForcedKernel(env);
  if (!forced.has_value()) {
    static std::once_flag warned;
    std::call_once(warned, [env] {
      KTX_LOG(Warning) << "KTX_FORCE_KERNEL=" << env
                       << " names no registered kernel variant; ignoring";
    });
  }
  return forced;
}

}  // namespace ktx
