#include "src/cpu/amx_native.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/cpu/cpu_features.h"
#include "src/cpu/gemm.h"
#include "src/cpu/gemm_scratch.h"

#if defined(KTX_HAVE_NATIVE_SIMD)
#include <immintrin.h>
#endif

namespace ktx {

#if !defined(KTX_HAVE_NATIVE_SIMD)

void NativeAmxGemm(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                   std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AMX kernel called but the build disabled native SIMD";
}

void NativeAvx512Gemm(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                      std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AVX-512 kernel called but the build disabled native SIMD";
}

void NativeAvx2GemmBf16(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                        std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AVX2 kernel called but the build disabled native SIMD";
}

void NativeAvx2GemmInt8(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                        std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AVX2 kernel called but the build disabled native SIMD";
}

void NativeAvx512GemmF32(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                         std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AVX-512 kernel called but the build disabled native SIMD";
}

void NativeAvx2GemmF32(const float*, std::int64_t, std::int64_t, const PackedMatrix&, float*,
                       std::int64_t, bool, std::int64_t, std::int64_t, void*, std::size_t) {
  KTX_LOG(Fatal) << "native AVX2 kernel called but the build disabled native SIMD";
}

#else

namespace {

// Tile configuration block consumed by LDTILECFG. Tiles used:
//   0: C accumulator (16 x 64B), 1: A activations, 2: B weights.
struct alignas(64) TileCfg {
  std::uint8_t palette_id = 1;
  std::uint8_t start_row = 0;
  std::uint8_t reserved[14] = {};
  std::uint16_t colsb[16] = {};
  std::uint8_t rows[16] = {};
};

__attribute__((target("amx-tile")))
void ConfigureTiles() {
  TileCfg cfg;
  for (int t = 0; t < 3; ++t) {
    cfg.colsb[t] = kTileBytesPerRow;
    cfg.rows[t] = kTileRows;
  }
  _tile_loadconfig(&cfg);
}

void StoreAcc(const float (&acc)[kTileRows][kNBlock], float* y, std::int64_t ldy,
              std::int64_t m0, int rows, std::int64_t n0, std::int64_t n, bool accumulate) {
  const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, n - n0);
  for (int i = 0; i < rows; ++i) {
    float* out = y + (m0 + i) * ldy + n0;
    for (std::int64_t j = 0; j < n_valid; ++j) {
      out[j] = accumulate ? out[j] + acc[i][j] : acc[i][j];
    }
  }
}

// SIMD int4 nibble unpack (the paper's §3.2 "efficient int4 decode"): each
// packed byte expands to the adjacent (low, high) signed-nibble pair. A 16-bit
// lane 0x00bb becomes bytes [b & 0xf, (b >> 4) & 0xf] via mask / shift-mask /
// or, and `(v ^ 8) - 8` sign-extends the 4-bit field — the exact bit patterns
// UnpackInt4Tile (layout.cc) produces one byte at a time, at 64 weights per
// iteration instead of 2.
__attribute__((target("avx512f,avx512bw")))
void UnpackInt4TileAvx512(const std::uint8_t* packed, TileReg* tile) {
  const __m512i lo_m = _mm512_set1_epi16(0x000f);
  const __m512i hi_m = _mm512_set1_epi16(0x0f00);
  const __m512i k8 = _mm512_set1_epi8(8);
  for (int p = 0; p < kTileRows; ++p) {
    const __m256i raw = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(packed + p * (kTileBytesPerRow / 2)));
    const __m512i w16 = _mm512_cvtepu8_epi16(raw);
    __m512i nib = _mm512_or_si512(_mm512_and_si512(w16, lo_m),
                                  _mm512_and_si512(_mm512_slli_epi16(w16, 4), hi_m));
    nib = _mm512_sub_epi8(_mm512_xor_si512(nib, k8), k8);
    _mm512_store_si512(tile->data[p], nib);
  }
}

__attribute__((target("amx-tile,amx-bf16,amx-int8,avx512f,avx512bw")))
void AmxGemmImpl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                 float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                 std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  ConfigureTiles();
  const std::int64_t k_blocks = w.k_blocks();
  const std::size_t need = static_cast<std::size_t>(k_blocks) * sizeof(TileReg) +
                           static_cast<std::size_t>(k_blocks) * kTileRows * sizeof(float) +
                           2 * kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  TileReg* a_tiles = carver.Take<TileReg>(static_cast<std::size_t>(k_blocks));
  float* x_scales = carver.Take<float>(static_cast<std::size_t>(kTileRows * k_blocks));
  alignas(64) float cbuf[kTileRows][kNBlock];
  alignas(64) std::int32_t ibuf[kTileRows][kNBlock];
  TileReg b_unpacked;

  for (std::int64_t m0 = 0; m0 < m; m0 += kTileRows) {
    const int rows = static_cast<int>(std::min<std::int64_t>(kTileRows, m - m0));
    if (w.dtype() == DType::kBF16) {
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        BuildActivationTileBf16(x + m0 * ldx, ldx, rows, kb * kKBlockBf16, w.k(),
                                &a_tiles[static_cast<std::size_t>(kb)]);
      }
      for (std::int64_t nb = nb0; nb < nb1; ++nb) {
        _tile_zero(0);
        for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
          _tile_loadd(1, a_tiles[static_cast<std::size_t>(kb)].data, kTileBytesPerRow);
          _tile_loadd(2, w.tile_ptr(nb, kb), kTileBytesPerRow);
          _tile_dpbf16ps(0, 1, 2);
        }
        _tile_stored(0, cbuf, kNBlock * sizeof(float));
        StoreAcc(cbuf, y, ldy, m0, rows, nb * kNBlock, w.n(), accumulate);
      }
    } else {
      ComputeActivationScalesInt8(x + m0 * ldx, rows, ldx, w.k(), w.k_block(), x_scales);
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        float row_scales[kTileRows] = {};
        for (int i = 0; i < rows; ++i) {
          row_scales[i] = x_scales[static_cast<std::size_t>(i * k_blocks + kb)];
        }
        BuildActivationTileInt8(x + m0 * ldx, ldx, rows, kb * kKBlockInt8, w.k(), row_scales,
                                &a_tiles[static_cast<std::size_t>(kb)]);
      }
      for (std::int64_t nb = nb0; nb < nb1; ++nb) {
        alignas(64) float acc[kTileRows][kNBlock] = {};
        for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
          _tile_zero(0);
          _tile_loadd(1, a_tiles[static_cast<std::size_t>(kb)].data, kTileBytesPerRow);
          if (w.dtype() == DType::kI8) {
            _tile_loadd(2, w.tile_ptr(nb, kb), kTileBytesPerRow);
          } else {
            UnpackInt4TileAvx512(w.tile_ptr(nb, kb), &b_unpacked);
            _tile_loadd(2, b_unpacked.data, kTileBytesPerRow);
          }
          _tile_dpbssd(0, 1, 2);
          _tile_stored(0, ibuf, kNBlock * sizeof(std::int32_t));
          const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - nb * kNBlock);
          for (int i = 0; i < rows; ++i) {
            const float xs = x_scales[static_cast<std::size_t>(i * k_blocks + kb)];
            for (std::int64_t j = 0; j < n_valid; ++j) {
              // Canonical rescale: t1 = float(dot) * xs; t2 = t1 * ws;
              // acc += t2 (three roundings, never fused — the TU is built
              // with -ffp-contract=off).
              const float t1 = static_cast<float>(ibuf[i][j]) * xs;
              const float t2 = t1 * w.scale(nb * kNBlock + j, kb);
              acc[i][j] += t2;
            }
          }
        }
        StoreAcc(acc, y, ldy, m0, rows, nb * kNBlock, w.n(), accumulate);
      }
    }
  }
  _tile_release();
}

// AVX-512 bf16 row kernel. Canonical bf16 sequence (tile.h): per 32-element
// k-block the even-index and odd-index products accumulate in two separate
// fma chains over ascending p, and the running accumulator absorbs their sum
// as acc += (even + odd). A bf16 product is exact in f32, so these vfmadd
// chains land on the identical bits as the TDPBF16PS tile instruction and the
// scalar emulation. (VDPBF16PS folds even and odd into one chain per step —
// a DIFFERENT rounding sequence — which is why this kernel does not use it.)
__attribute__((target("avx512f,avx512bw,avx512vl")))
void Avx512GemmBf16Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                        float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                        std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  const std::int64_t k_blocks = w.k_blocks();
  const std::int64_t k_pad = k_blocks * kKBlockBf16;
  const std::size_t need =
      static_cast<std::size_t>(k_pad) * sizeof(std::uint16_t) + kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  std::uint16_t* xb = carver.Take<std::uint16_t>(static_cast<std::size_t>(k_pad));
  const __m512i hi_mask = _mm512_set1_epi32(static_cast<int>(0xFFFF0000u));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t c = 0; c < w.k(); ++c) {
      xb[static_cast<std::size_t>(c)] = FloatToBF16(row[c]).bits;
    }
    for (std::int64_t c = w.k(); c < k_pad; ++c) {
      xb[static_cast<std::size_t>(c)] = 0;
    }
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      __m512 acc = _mm512_setzero_ps();
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const auto* brow = reinterpret_cast<const std::uint16_t*>(w.tile_ptr(nb, kb));
        const std::uint16_t* xp = xb + kb * kKBlockBf16;
        __m512 ve = _mm512_setzero_ps();
        __m512 vo = _mm512_setzero_ps();
        for (int p = 0; p < kTileRows; ++p) {
          const std::uint32_t eb = static_cast<std::uint32_t>(xp[2 * p]) << 16;
          const std::uint32_t ob = static_cast<std::uint32_t>(xp[2 * p + 1]) << 16;
          float xe;
          float xo;
          std::memcpy(&xe, &eb, 4);
          std::memcpy(&xo, &ob, 4);
          const __m512i bv = _mm512_loadu_si512(brow + p * 32);
          const __m512 be = _mm512_castsi512_ps(_mm512_slli_epi32(bv, 16));
          const __m512 bo = _mm512_castsi512_ps(_mm512_and_si512(bv, hi_mask));
          ve = _mm512_fmadd_ps(be, _mm512_set1_ps(xe), ve);
          vo = _mm512_fmadd_ps(bo, _mm512_set1_ps(xo), vo);
        }
        acc = _mm512_add_ps(acc, _mm512_add_ps(ve, vo));
      }
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      const __mmask16 mask = static_cast<__mmask16>((1u << n_valid) - 1);
      float* out = y + i * ldy + n0;
      if (accumulate) {
        const __m512 prev = _mm512_maskz_loadu_ps(mask, out);
        acc = _mm512_add_ps(acc, prev);
      }
      _mm512_mask_storeu_ps(out, mask, acc);
    }
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512bf16,avx512vnni")))
void Avx512GemmInt8Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                        float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                        std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  const std::int64_t k_blocks = w.k_blocks();
  const std::int64_t k_pad = k_blocks * kKBlockInt8;
  const std::size_t need = static_cast<std::size_t>(k_blocks) * sizeof(float) +
                           static_cast<std::size_t>(k_pad) + 2 * kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  float* scales = carver.Take<float>(static_cast<std::size_t>(k_blocks));
  std::uint8_t* xu = carver.Take<std::uint8_t>(static_cast<std::size_t>(k_pad));  // q + 128
  alignas(64) float wscale[kNBlock];
  alignas(64) std::int32_t wsum[kNBlock];

  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    ComputeActivationScalesInt8(row, 1, ldx, w.k(), w.k_block(), scales);
    std::fill(xu, xu + k_pad, static_cast<std::uint8_t>(128));
    for (std::int64_t c = 0; c < w.k(); ++c) {
      const float s = scales[static_cast<std::size_t>(c / w.k_block())];
      const float inv = s > 0.0f ? 1.0f / s : 0.0f;
      const int q = std::clamp(static_cast<int>(std::lrintf(row[c] * inv)), -127, 127);
      xu[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(q + 128);
    }
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      __m512 accf = _mm512_setzero_ps();
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const std::uint8_t* xp = xu + kb * kKBlockInt8;
        __m512i acci = _mm512_setzero_si512();
        if (w.dtype() == DType::kI8) {
          const std::uint8_t* brow = w.tile_ptr(nb, kb);
          for (int p = 0; p < kTileRows; ++p) {
            std::uint32_t quad;
            std::memcpy(&quad, xp + 4 * p, 4);
            acci = _mm512_dpbusd_epi32(acci, _mm512_set1_epi32(static_cast<int>(quad)),
                                       _mm512_loadu_si512(brow + p * kTileBytesPerRow));
          }
        } else {
          // Fused int4 dequantize-into-GEMM: unpack the 32-byte packed row
          // straight into a register (same mask/shift/xor-sub sequence as
          // UnpackInt4TileAvx512) and feed VPDPBUSD directly — no tile
          // materialization, ~4x fewer weight bytes streamed than bf16, and
          // integer MACs identical to the scalar unpack.
          const std::uint8_t* prow = w.tile_ptr(nb, kb);
          const __m512i lo_m = _mm512_set1_epi16(0x000f);
          const __m512i hi_m = _mm512_set1_epi16(0x0f00);
          const __m512i k8 = _mm512_set1_epi8(8);
          for (int p = 0; p < kTileRows; ++p) {
            std::uint32_t quad;
            std::memcpy(&quad, xp + 4 * p, 4);
            const __m256i raw = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(prow + p * (kTileBytesPerRow / 2)));
            const __m512i w16 = _mm512_cvtepu8_epi16(raw);
            __m512i nib = _mm512_or_si512(
                _mm512_and_si512(w16, lo_m),
                _mm512_and_si512(_mm512_slli_epi16(w16, 4), hi_m));
            nib = _mm512_sub_epi8(_mm512_xor_si512(nib, k8), k8);
            acci = _mm512_dpbusd_epi32(acci, _mm512_set1_epi32(static_cast<int>(quad)), nib);
          }
        }
        for (std::int64_t j = 0; j < kNBlock; ++j) {
          const std::int64_t nrow = std::min<std::int64_t>(n0 + j, w.n() - 1);
          wscale[j] = w.scale(nrow, kb);
          wsum[j] = w.col_sum(nrow, kb);
        }
        // Correct the +128 activation offset: real = acc - 128 * sum(w).
        const __m512i corr =
            _mm512_sub_epi32(acci, _mm512_slli_epi32(_mm512_load_si512(wsum), 7));
        const float xs = scales[static_cast<std::size_t>(kb)];
        // Canonical rescale: t1 = float(dot) * xs; t2 = t1 * ws; acc += t2 —
        // three separate roundings, never fused, matching every other backend.
        const __m512 t1 = _mm512_mul_ps(_mm512_cvtepi32_ps(corr), _mm512_set1_ps(xs));
        const __m512 t2 = _mm512_mul_ps(t1, _mm512_load_ps(wscale));
        accf = _mm512_add_ps(accf, t2);
      }
      const __mmask16 mask = static_cast<__mmask16>((1u << n_valid) - 1);
      float* out = y + i * ldy + n0;
      if (accumulate) {
        accf = _mm512_add_ps(accf, _mm512_maskz_loadu_ps(mask, out));
      }
      _mm512_mask_storeu_ps(out, mask, accf);
    }
  }
}


// AVX2+FMA bf16 kernel: the tile rows hold interleaved (even, odd) bf16
// pairs; a bf16 widens to f32 by a 16-bit left shift, so each 32-bit lane of
// a tile row splits into the even value (low half shifted up) and the odd
// value (high half masked). Canonical bf16 sequence (tile.h): per k-block the
// even-index and odd-index products run in separate fma chains over ascending
// p (one lo/hi register pair each), and the accumulator absorbs their sum —
// bit-identical to the AMX tile instruction, the AVX-512 kernel, and the
// scalar emulation.
__attribute__((target("avx2,fma")))
void Avx2GemmBf16Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                      std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  const std::int64_t k_blocks = w.k_blocks();
  const std::int64_t k_pad = k_blocks * kKBlockBf16;
  const std::size_t need =
      static_cast<std::size_t>(k_pad) * sizeof(std::uint16_t) + kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  std::uint16_t* xb = carver.Take<std::uint16_t>(static_cast<std::size_t>(k_pad));
  const __m256i hi_mask = _mm256_set1_epi32(static_cast<int>(0xFFFF0000u));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t c = 0; c < w.k(); ++c) {
      xb[static_cast<std::size_t>(c)] = FloatToBF16(row[c]).bits;
    }
    for (std::int64_t c = w.k(); c < k_pad; ++c) {
      xb[static_cast<std::size_t>(c)] = 0;
    }
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      __m256 acc_lo = _mm256_setzero_ps();  // outputs j = 0..7
      __m256 acc_hi = _mm256_setzero_ps();  // outputs j = 8..15
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const auto* brow = reinterpret_cast<const std::uint16_t*>(w.tile_ptr(nb, kb));
        const std::uint16_t* xp = xb + kb * kKBlockBf16;
        __m256 ve_lo = _mm256_setzero_ps();
        __m256 vo_lo = _mm256_setzero_ps();
        __m256 ve_hi = _mm256_setzero_ps();
        __m256 vo_hi = _mm256_setzero_ps();
        for (int p = 0; p < kTileRows; ++p) {
          std::uint32_t lo_bits = static_cast<std::uint32_t>(xp[2 * p]) << 16;
          std::uint32_t hi_bits = static_cast<std::uint32_t>(xp[2 * p + 1]) << 16;
          float xl;
          float xh;
          std::memcpy(&xl, &lo_bits, 4);
          std::memcpy(&xh, &hi_bits, 4);
          const __m256 vxl = _mm256_set1_ps(xl);
          const __m256 vxh = _mm256_set1_ps(xh);
          const __m256i raw_lo = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(brow + p * 32));
          const __m256i raw_hi = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(brow + p * 32 + 16));
          const __m256 even_lo = _mm256_castsi256_ps(_mm256_slli_epi32(raw_lo, 16));
          const __m256 odd_lo = _mm256_castsi256_ps(_mm256_and_si256(raw_lo, hi_mask));
          const __m256 even_hi = _mm256_castsi256_ps(_mm256_slli_epi32(raw_hi, 16));
          const __m256 odd_hi = _mm256_castsi256_ps(_mm256_and_si256(raw_hi, hi_mask));
          ve_lo = _mm256_fmadd_ps(even_lo, vxl, ve_lo);
          vo_lo = _mm256_fmadd_ps(odd_lo, vxh, vo_lo);
          ve_hi = _mm256_fmadd_ps(even_hi, vxl, ve_hi);
          vo_hi = _mm256_fmadd_ps(odd_hi, vxh, vo_hi);
        }
        acc_lo = _mm256_add_ps(acc_lo, _mm256_add_ps(ve_lo, vo_lo));
        acc_hi = _mm256_add_ps(acc_hi, _mm256_add_ps(ve_hi, vo_hi));
      }
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      alignas(32) float out_buf[kNBlock];
      _mm256_store_ps(out_buf, acc_lo);
      _mm256_store_ps(out_buf + 8, acc_hi);
      float* out = y + i * ldy + n0;
      for (std::int64_t j = 0; j < n_valid; ++j) {
        out[j] = accumulate ? out[j] + out_buf[j] : out_buf[j];
      }
    }
  }
}


// AVX2 int8/int4 kernel. Tile row p holds bytes [4j + r] for outputs j; two
// 128-bit halves sign-extend to i16 and PMADDWD against the repeating
// activation quad [a0,a1,a2,a3] producing adjacent-pair partial sums that a
// final horizontal pass folds into the 16 outputs. Integer math matches the
// tile emulation exactly; the f32 rescale runs per k-block like every other
// backend.
__attribute__((target("avx2,fma")))
void Avx2GemmInt8Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                      std::int64_t nb1, void* scratch, std::size_t scratch_bytes) {
  const std::int64_t k_blocks = w.k_blocks();
  const std::int64_t k_pad = k_blocks * kKBlockInt8;
  const std::size_t need = static_cast<std::size_t>(k_blocks) * sizeof(float) +
                           static_cast<std::size_t>(k_pad) + 2 * kCacheLineBytes;
  ScratchCarver carver = AcquireGemmScratch(scratch, scratch_bytes, need);
  float* scales = carver.Take<float>(static_cast<std::size_t>(k_blocks));
  std::int8_t* xq = carver.Take<std::int8_t>(static_cast<std::size_t>(k_pad));
  const __m128i lo_m = _mm_set1_epi16(0x000f);
  const __m128i hi_m = _mm_set1_epi16(0x0f00);
  const __m128i k8 = _mm_set1_epi8(8);

  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    ComputeActivationScalesInt8(row, 1, ldx, w.k(), w.k_block(), scales);
    std::fill(xq, xq + k_pad, static_cast<std::int8_t>(0));
    for (std::int64_t c = 0; c < w.k(); ++c) {
      const float sc = scales[static_cast<std::size_t>(c / w.k_block())];
      const float inv = sc > 0.0f ? 1.0f / sc : 0.0f;
      xq[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(
          std::clamp(static_cast<int>(std::lrintf(row[c] * inv)), -127, 127));
    }
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      alignas(32) float accf[kNBlock] = {};
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const std::int8_t* xp = xq + kb * kKBlockInt8;
        // acc[h] holds adjacent-pair partials: lanes (2t, 2t+1) sum to output
        // j = h*4 + t within this 16-output band.
        __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                          _mm256_setzero_si256(), _mm256_setzero_si256()};
        const bool is_i8 = w.dtype() == DType::kI8;
        const std::uint8_t* tile_base = w.tile_ptr(nb, kb);
        for (int p = 0; p < kTileRows; ++p) {
          const std::int8_t* quad = xp + 4 * p;
          const __m128i a8 = _mm_set1_epi32(*reinterpret_cast<const std::int32_t*>(quad));
          const __m256i a16 = _mm256_cvtepi8_epi16(a8);  // [a0..a3] x4
          for (int h = 0; h < 4; ++h) {
            __m128i w8;
            if (is_i8) {
              w8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  tile_base + p * kTileBytesPerRow + 16 * h));
            } else {
              // Fused int4 unpack: 8 packed bytes -> 16 signed nibbles via
              // the same mask / shift-mask / xor-sub sequence as the AVX-512
              // kernel, feeding PMADDWD without materializing the i8 tile.
              const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
                  tile_base + p * (kTileBytesPerRow / 2) + 8 * h));
              const __m128i w16x = _mm_cvtepu8_epi16(raw);
              w8 = _mm_or_si128(_mm_and_si128(w16x, lo_m),
                                _mm_and_si128(_mm_slli_epi16(w16x, 4), hi_m));
              w8 = _mm_sub_epi8(_mm_xor_si128(w8, k8), k8);
            }
            const __m256i w16 = _mm256_cvtepi8_epi16(w8);
            acc[h] = _mm256_add_epi32(acc[h], _mm256_madd_epi16(w16, a16));
          }
        }
        const float xs = scales[static_cast<std::size_t>(kb)];
        alignas(32) std::int32_t lanes[8];
        for (int h = 0; h < 4; ++h) {
          _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[h]);
          for (int t = 0; t < 4; ++t) {
            const std::int64_t j = h * 4 + t;
            const std::int64_t nrow = std::min<std::int64_t>(n0 + j, w.n() - 1);
            // Canonical rescale: t1 = float(dot) * xs; t2 = t1 * ws; acc += t2.
            const float t1 = static_cast<float>(lanes[2 * t] + lanes[2 * t + 1]) * xs;
            const float t2 = t1 * w.scale(nrow, kb);
            accf[j] += t2;
          }
        }
      }
      float* out = y + i * ldy + n0;
      for (std::int64_t j = 0; j < n_valid; ++j) {
        out[j] = accumulate ? out[j] + accf[j] : accf[j];
      }
    }
  }
}

// AVX-512 f32 kernel on the k-major kF32 layout. Per output lane the op
// sequence is one vfmadd per k step in ascending k order — exactly the
// std::fma sequence the scalar emulation performs — so results are
// bit-identical across all three tiers (the expert-cache hot-path identity).
__attribute__((target("avx512f")))
void Avx512GemmF32Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                       float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                       std::int64_t nb1) {
  const std::int64_t k = w.k();
  const std::int64_t k_blocks = w.k_blocks();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      __m512 acc = _mm512_setzero_ps();
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const auto* tile = reinterpret_cast<const float*>(w.tile_ptr(nb, kb));
        const std::int64_t p_valid =
            std::min<std::int64_t>(kKBlockF32, k - kb * kKBlockF32);
        for (std::int64_t p = 0; p < p_valid; ++p) {
          acc = _mm512_fmadd_ps(_mm512_set1_ps(row[kb * kKBlockF32 + p]),
                                _mm512_load_ps(tile + p * kNBlock), acc);
        }
      }
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      const __mmask16 mask = static_cast<__mmask16>((1u << n_valid) - 1);
      float* out = y + i * ldy + n0;
      if (accumulate) {
        acc = _mm512_add_ps(_mm512_maskz_loadu_ps(mask, out), acc);
      }
      _mm512_mask_storeu_ps(out, mask, acc);
    }
  }
}

// AVX2 f32 kernel: two 8-lane halves walking the identical per-lane fma
// sequence as the AVX-512 kernel and the scalar emulation.
__attribute__((target("avx2,fma")))
void Avx2GemmF32Impl(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                     float* y, std::int64_t ldy, bool accumulate, std::int64_t nb0,
                     std::int64_t nb1) {
  const std::int64_t k = w.k();
  const std::int64_t k_blocks = w.k_blocks();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t nb = nb0; nb < nb1; ++nb) {
      __m256 acc_lo = _mm256_setzero_ps();  // outputs j = 0..7
      __m256 acc_hi = _mm256_setzero_ps();  // outputs j = 8..15
      for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
        const auto* tile = reinterpret_cast<const float*>(w.tile_ptr(nb, kb));
        const std::int64_t p_valid =
            std::min<std::int64_t>(kKBlockF32, k - kb * kKBlockF32);
        for (std::int64_t p = 0; p < p_valid; ++p) {
          const __m256 vx = _mm256_set1_ps(row[kb * kKBlockF32 + p]);
          acc_lo = _mm256_fmadd_ps(vx, _mm256_load_ps(tile + p * kNBlock), acc_lo);
          acc_hi = _mm256_fmadd_ps(vx, _mm256_load_ps(tile + p * kNBlock + 8), acc_hi);
        }
      }
      const std::int64_t n0 = nb * kNBlock;
      const std::int64_t n_valid = std::min<std::int64_t>(kNBlock, w.n() - n0);
      alignas(32) float out_buf[kNBlock];
      _mm256_store_ps(out_buf, acc_lo);
      _mm256_store_ps(out_buf + 8, acc_hi);
      float* out = y + i * ldy + n0;
      for (std::int64_t j = 0; j < n_valid; ++j) {
        out[j] = accumulate ? out[j] + out_buf[j] : out_buf[j];
      }
    }
  }
}

}  // namespace

void NativeAmxGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                   float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
                   std::int64_t nb_end, void* scratch, std::size_t scratch_bytes) {
  KTX_CHECK(NativeAmxAvailable());
  AmxGemmImpl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end, scratch, scratch_bytes);
}

void NativeAvx512Gemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
                      std::int64_t nb_end, void* scratch, std::size_t scratch_bytes) {
  KTX_CHECK(NativeAvx512Available());
  if (w.dtype() == DType::kBF16) {
    Avx512GemmBf16Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end, scratch,
                       scratch_bytes);
  } else {
    Avx512GemmInt8Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end, scratch,
                       scratch_bytes);
  }
}

void NativeAvx2GemmBf16(const float* x, std::int64_t m, std::int64_t ldx,
                        const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                        std::int64_t nb_begin, std::int64_t nb_end, void* scratch,
                        std::size_t scratch_bytes) {
  KTX_CHECK(NativeAvx2Available());
  KTX_CHECK(w.dtype() == DType::kBF16) << "bf16 entry point called with quantized weights";
  Avx2GemmBf16Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end, scratch, scratch_bytes);
}

void NativeAvx2GemmInt8(const float* x, std::int64_t m, std::int64_t ldx,
                        const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                        std::int64_t nb_begin, std::int64_t nb_end, void* scratch,
                        std::size_t scratch_bytes) {
  KTX_CHECK(NativeAvx2Available());
  KTX_CHECK(w.dtype() == DType::kI8 || w.dtype() == DType::kI4);
  Avx2GemmInt8Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end, scratch, scratch_bytes);
}

void NativeAvx512GemmF32(const float* x, std::int64_t m, std::int64_t ldx,
                         const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                         std::int64_t nb_begin, std::int64_t nb_end, void*, std::size_t) {
  KTX_CHECK(NativeAvx512Available());
  KTX_CHECK(w.dtype() == DType::kF32) << "f32 entry point called with non-f32 weights";
  Avx512GemmF32Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end);
}

void NativeAvx2GemmF32(const float* x, std::int64_t m, std::int64_t ldx,
                       const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                       std::int64_t nb_begin, std::int64_t nb_end, void*, std::size_t) {
  KTX_CHECK(NativeAvx2Available());
  KTX_CHECK(w.dtype() == DType::kF32) << "f32 entry point called with non-f32 weights";
  Avx2GemmF32Impl(x, m, ldx, w, y, ldy, accumulate, nb_begin, nb_end);
}

#endif  // KTX_HAVE_NATIVE_SIMD

}  // namespace ktx
