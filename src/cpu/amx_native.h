// Native AMX / AVX-512 kernel entry points.
//
// These are compiled in a dedicated translation unit with AMX/AVX-512 codegen
// enabled (see CMakeLists) and must only be called when cpu_features.h reports
// the corresponding capability; GemmPacked() performs that dispatch. When the
// build disables native SIMD entirely, these symbols exist but abort.

#ifndef KTX_SRC_CPU_AMX_NATIVE_H_
#define KTX_SRC_CPU_AMX_NATIVE_H_

#include <cstddef>
#include <cstdint>

#include "src/cpu/layout.h"

namespace ktx {

// Every entry point takes an optional caller-provided scratch region for its
// per-call temporaries (see GemmOptions::scratch); a null/short region falls
// back to the thread-local buffer behind GemmThreadScratch().

// Full-tile AMX kernel (TDPBF16PS / TDPBSSD) on the packed layout.
void NativeAmxGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                   float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
                   std::int64_t nb_end, void* scratch = nullptr, std::size_t scratch_bytes = 0);

// Row-at-a-time AVX-512 kernel (VDPBF16PS / VPDPBUSD) on the same layout.
void NativeAvx512Gemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                      float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
                      std::int64_t nb_end, void* scratch = nullptr,
                      std::size_t scratch_bytes = 0);

// AVX2+FMA fallback for hosts without AVX-512 (bf16 weights).
void NativeAvx2GemmBf16(const float* x, std::int64_t m, std::int64_t ldx,
                        const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                        std::int64_t nb_begin, std::int64_t nb_end, void* scratch = nullptr,
                        std::size_t scratch_bytes = 0);

// AVX2 int8/int4 fallback (PMADDWD on sign-extended nibble-unpacked tiles;
// integer math identical to the tile emulation).
void NativeAvx2GemmInt8(const float* x, std::int64_t m, std::int64_t ldx,
                        const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                        std::int64_t nb_begin, std::int64_t nb_end, void* scratch = nullptr,
                        std::size_t scratch_bytes = 0);

// f32 kernels on the k-major kF32 layout. Both perform the identical per-lane
// fma sequence as the scalar emulation (gemm.cc), so all three tiers are
// bit-exact with each other — the invariant the expert cache's hot path
// depends on. Neither uses scratch; the parameters exist for signature parity.
void NativeAvx512GemmF32(const float* x, std::int64_t m, std::int64_t ldx,
                         const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                         std::int64_t nb_begin, std::int64_t nb_end, void* scratch = nullptr,
                         std::size_t scratch_bytes = 0);

void NativeAvx2GemmF32(const float* x, std::int64_t m, std::int64_t ldx,
                       const PackedMatrix& w, float* y, std::int64_t ldy, bool accumulate,
                       std::int64_t nb_begin, std::int64_t nb_end, void* scratch = nullptr,
                       std::size_t scratch_bytes = 0);

}  // namespace ktx

#endif  // KTX_SRC_CPU_AMX_NATIVE_H_
