#include "src/cpu/layout.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace ktx {

namespace {

int KBlockFor(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return kKBlockF32;
    case DType::kBF16:
      return kKBlockBf16;
    default:
      return kKBlockInt8;
  }
}

std::size_t TileBytesFor(DType dtype) {
  return dtype == DType::kI4 ? kTileBytes / 2 : kTileBytes;
}

}  // namespace

StatusOr<PackedMatrix> PackedMatrix::Pack(const Tensor& w, DType dtype) {
  if (w.rank() != 2 || w.dtype() != DType::kF32) {
    return InvalidArgumentError("PackedMatrix::Pack expects a rank-2 f32 tensor");
  }
  if (dtype != DType::kF32 && dtype != DType::kBF16 && dtype != DType::kI8 &&
      dtype != DType::kI4) {
    return InvalidArgumentError("PackedMatrix supports f32/bf16/i8/i4");
  }
  PackedMatrix pm;
  pm.n_ = w.dim(0);
  pm.k_ = w.dim(1);
  pm.dtype_ = dtype;
  pm.k_block_ = KBlockFor(dtype);
  pm.n_blocks_ = (pm.n_ + kNBlock - 1) / kNBlock;
  pm.k_blocks_ = (pm.k_ + pm.k_block_ - 1) / pm.k_block_;
  pm.tile_bytes_ = TileBytesFor(dtype);
  pm.tiles_ = AlignedBuffer(
      static_cast<std::size_t>(pm.n_blocks_ * pm.k_blocks_) * pm.tile_bytes_, kCacheLineBytes);

  const float* src = w.f32();
  auto w_at = [&](std::int64_t nrow, std::int64_t kcol) -> float {
    if (nrow >= pm.n_ || kcol >= pm.k_) {
      return 0.0f;
    }
    return src[nrow * pm.k_ + kcol];
  };

  if (dtype == DType::kF32) {
    for (std::int64_t nb = 0; nb < pm.n_blocks_; ++nb) {
      for (std::int64_t kb = 0; kb < pm.k_blocks_; ++kb) {
        auto* tile =
            reinterpret_cast<float*>(const_cast<std::uint8_t*>(pm.tile_ptr(nb, kb)));
        // tile[p*16 + j] = W[nb*16 + j][kb*16 + p]: one 64-byte row of 16
        // outputs per k step.
        for (int p = 0; p < kKBlockF32; ++p) {
          for (int j = 0; j < kNBlock; ++j) {
            tile[p * kNBlock + j] = w_at(nb * kNBlock + j, kb * kKBlockF32 + p);
          }
        }
      }
    }
    return pm;
  }

  if (dtype == DType::kBF16) {
    for (std::int64_t nb = 0; nb < pm.n_blocks_; ++nb) {
      for (std::int64_t kb = 0; kb < pm.k_blocks_; ++kb) {
        auto* tile = reinterpret_cast<std::uint16_t*>(
            const_cast<std::uint8_t*>(pm.tile_ptr(nb, kb)));
        // B.row(p)[2j + r] = W[nb*16 + j][kb*32 + 2p + r]
        for (int p = 0; p < kTileRows; ++p) {
          for (int j = 0; j < kNBlock; ++j) {
            for (int r = 0; r < 2; ++r) {
              tile[p * 32 + 2 * j + r] =
                  FloatToBF16(w_at(nb * kNBlock + j, kb * kKBlockBf16 + 2 * p + r)).bits;
            }
          }
        }
      }
    }
    return pm;
  }

  // Quantized paths: per-(row, k-block) symmetric scales.
  pm.scales_ = Tensor({pm.n_, pm.k_blocks_}, DType::kF32);
  pm.col_sums_ = Tensor({pm.n_, pm.k_blocks_}, DType::kI32);
  float* scales = pm.scales_.f32();
  std::int32_t* col_sums = pm.col_sums_.i32();
  const int qmax = dtype == DType::kI8 ? 127 : 7;
  // Quantize row-major first, then scatter into tile layout.
  std::vector<std::int8_t> qrow(static_cast<std::size_t>(pm.k_blocks_ * pm.k_block_));
  std::vector<std::vector<std::int8_t>> qvals(
      static_cast<std::size_t>(pm.n_),
      std::vector<std::int8_t>(static_cast<std::size_t>(pm.k_blocks_ * pm.k_block_), 0));
  for (std::int64_t nrow = 0; nrow < pm.n_; ++nrow) {
    for (std::int64_t kb = 0; kb < pm.k_blocks_; ++kb) {
      float max_abs = 0.0f;
      for (int i = 0; i < pm.k_block_; ++i) {
        max_abs = std::max(max_abs, std::fabs(w_at(nrow, kb * pm.k_block_ + i)));
      }
      const float scale = max_abs > 0.0f ? max_abs / static_cast<float>(qmax) : 1.0f;
      scales[nrow * pm.k_blocks_ + kb] = scale;
      std::int32_t sum = 0;
      for (int i = 0; i < pm.k_block_; ++i) {
        const int v =
            static_cast<int>(std::lrintf(w_at(nrow, kb * pm.k_block_ + i) / scale));
        const std::int8_t q = static_cast<std::int8_t>(std::clamp(v, -qmax, qmax));
        qvals[static_cast<std::size_t>(nrow)][static_cast<std::size_t>(kb * pm.k_block_ + i)] = q;
        sum += q;
      }
      col_sums[nrow * pm.k_blocks_ + kb] = sum;
    }
  }
  auto q_at = [&](std::int64_t nrow, std::int64_t kcol) -> std::int8_t {
    if (nrow >= pm.n_) {
      return 0;
    }
    return qvals[static_cast<std::size_t>(nrow)][static_cast<std::size_t>(kcol)];
  };

  for (std::int64_t nb = 0; nb < pm.n_blocks_; ++nb) {
    for (std::int64_t kb = 0; kb < pm.k_blocks_; ++kb) {
      auto* tile = const_cast<std::uint8_t*>(pm.tile_ptr(nb, kb));
      // Int8 tile byte layout: row p, byte 4j + r = Q[nb*16 + j][kb*64 + 4p + r].
      std::uint8_t full[kTileRows][kTileBytesPerRow];
      for (int p = 0; p < kTileRows; ++p) {
        for (int j = 0; j < kNBlock; ++j) {
          for (int r = 0; r < 4; ++r) {
            full[p][4 * j + r] = static_cast<std::uint8_t>(
                q_at(nb * kNBlock + j, kb * kKBlockInt8 + 4 * p + r));
          }
        }
      }
      if (dtype == DType::kI8) {
        std::memcpy(tile, full, sizeof(full));
      } else {
        // Int4: two consecutive bytes of the int8 tile share one byte
        // (low nibble = even offset).
        const auto* flat = &full[0][0];
        for (int i = 0; i < kTileBytes / 2; ++i) {
          const std::uint8_t lo = flat[2 * i] & 0x0f;
          const std::uint8_t hi = flat[2 * i + 1] & 0x0f;
          tile[i] = static_cast<std::uint8_t>(lo | (hi << 4));
        }
      }
    }
  }
  return pm;
}

Tensor PackedMatrix::Unpack() const {
  Tensor out({n_, k_}, DType::kF32);
  float* dst = out.f32();
  for (std::int64_t nb = 0; nb < n_blocks_; ++nb) {
    for (std::int64_t kb = 0; kb < k_blocks_; ++kb) {
      if (dtype_ == DType::kF32) {
        const auto* tile = reinterpret_cast<const float*>(tile_ptr(nb, kb));
        for (int p = 0; p < kKBlockF32; ++p) {
          for (int j = 0; j < kNBlock; ++j) {
            const std::int64_t nrow = nb * kNBlock + j;
            const std::int64_t kcol = kb * kKBlockF32 + p;
            if (nrow < n_ && kcol < k_) {
              dst[nrow * k_ + kcol] = tile[p * kNBlock + j];
            }
          }
        }
      } else if (dtype_ == DType::kBF16) {
        const auto* tile = reinterpret_cast<const std::uint16_t*>(tile_ptr(nb, kb));
        for (int p = 0; p < kTileRows; ++p) {
          for (int j = 0; j < kNBlock; ++j) {
            for (int r = 0; r < 2; ++r) {
              const std::int64_t nrow = nb * kNBlock + j;
              const std::int64_t kcol = kb * kKBlockBf16 + 2 * p + r;
              if (nrow < n_ && kcol < k_) {
                dst[nrow * k_ + kcol] = BF16ToFloat(BF16{tile[p * 32 + 2 * j + r]});
              }
            }
          }
        }
      } else {
        TileReg tile;
        if (dtype_ == DType::kI8) {
          tile.Load(tile_ptr(nb, kb), kTileBytesPerRow);
        } else {
          UnpackInt4Tile(tile_ptr(nb, kb), &tile);
        }
        const auto* ti8 = reinterpret_cast<const std::int8_t*>(tile.data);
        for (int p = 0; p < kTileRows; ++p) {
          for (int j = 0; j < kNBlock; ++j) {
            for (int r = 0; r < 4; ++r) {
              const std::int64_t nrow = nb * kNBlock + j;
              const std::int64_t kcol = kb * kKBlockInt8 + 4 * p + r;
              if (nrow < n_ && kcol < k_) {
                dst[nrow * k_ + kcol] =
                    static_cast<float>(ti8[p * 64 + 4 * j + r]) * scale(nrow, kb);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

void BuildActivationTileBf16(const float* x, std::int64_t ldx, int rows, std::int64_t k0,
                             std::int64_t k_valid, TileReg* tile) {
  auto* dst = reinterpret_cast<std::uint16_t*>(tile->data);
  std::memset(tile->data, 0, sizeof(tile->data));
  for (int i = 0; i < rows; ++i) {
    const float* row = x + static_cast<std::ptrdiff_t>(i) * ldx;
    const std::int64_t limit = std::min<std::int64_t>(kKBlockBf16, k_valid - k0);
    for (std::int64_t c = 0; c < limit; ++c) {
      dst[i * 32 + c] = FloatToBF16(row[k0 + c]).bits;
    }
  }
}

void BuildActivationTileInt8(const float* x, std::int64_t ldx, int rows, std::int64_t k0,
                             std::int64_t k_valid, const float* scales, TileReg* tile) {
  auto* dst = reinterpret_cast<std::int8_t*>(tile->data);
  std::memset(tile->data, 0, sizeof(tile->data));
  for (int i = 0; i < rows; ++i) {
    const float* row = x + static_cast<std::ptrdiff_t>(i) * ldx;
    const float inv_scale = scales[i] > 0.0f ? 1.0f / scales[i] : 0.0f;
    const std::int64_t limit = std::min<std::int64_t>(kKBlockInt8, k_valid - k0);
    for (std::int64_t c = 0; c < limit; ++c) {
      const int v = static_cast<int>(std::lrintf(row[k0 + c] * inv_scale));
      dst[i * 64 + c] = static_cast<std::int8_t>(std::clamp(v, -127, 127));
    }
  }
}

void ComputeActivationScalesInt8(const float* x, std::int64_t m, std::int64_t ldx,
                                 std::int64_t k, int k_block, float* scales) {
  const std::int64_t k_blocks = (k + k_block - 1) / k_block;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = x + i * ldx;
    for (std::int64_t kb = 0; kb < k_blocks; ++kb) {
      float max_abs = 0.0f;
      const std::int64_t hi = std::min<std::int64_t>(k, (kb + 1) * k_block);
      for (std::int64_t c = kb * k_block; c < hi; ++c) {
        max_abs = std::max(max_abs, std::fabs(row[c]));
      }
      scales[i * k_blocks + kb] = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
    }
  }
}

void UnpackInt4Tile(const std::uint8_t* packed, TileReg* tile) {
  auto* dst = reinterpret_cast<std::int8_t*>(tile->data);
  for (int i = 0; i < kTileBytes / 2; ++i) {
    const std::uint8_t byte = packed[i];
    dst[2 * i] = static_cast<std::int8_t>(((byte & 0x0f) ^ 8) - 8);
    dst[2 * i + 1] = static_cast<std::int8_t>((((byte >> 4) & 0x0f) ^ 8) - 8);
  }
}

float QuantGemvErrorBound(const PackedMatrix& w, const float* x, std::int64_t nrow) {
  KTX_CHECK(w.quantized()) << "QuantGemvErrorBound needs a kI8/kI4 matrix";
  KTX_CHECK(nrow >= 0 && nrow < w.n());
  // The kernels compute y = sum_blocks scale_x * scale_w * <q_x, q_w>, i.e.
  // sum(x_hat * w_hat) over the rounded values. Splitting the error,
  //   |x_hat*w_hat - x*w| <= |x_hat - x| * |w_hat| + |x| * |w_hat - w|,
  // each rounding is at most half its scale (scales cover the block amax, so
  // the clamps never truncate).
  const std::int64_t nb = nrow / kNBlock;
  const int j = static_cast<int>(nrow % kNBlock);
  double bound = 0.0;
  for (std::int64_t kb = 0; kb < w.k_blocks(); ++kb) {
    TileReg tile;
    if (w.dtype() == DType::kI8) {
      tile.Load(w.tile_ptr(nb, kb), kTileBytesPerRow);
    } else {
      UnpackInt4Tile(w.tile_ptr(nb, kb), &tile);
    }
    const auto* ti8 = reinterpret_cast<const std::int8_t*>(tile.data);
    const double scale_w = w.scale(nrow, kb);
    const std::int64_t k0 = kb * kKBlockInt8;
    const std::int64_t hi = std::min<std::int64_t>(w.k(), k0 + kKBlockInt8);
    double sum_abs_x = 0.0;
    double amax_x = 0.0;
    double sum_abs_w_hat = 0.0;
    for (std::int64_t c = k0; c < hi; ++c) {
      const double xv = std::fabs(static_cast<double>(x[c]));
      sum_abs_x += xv;
      amax_x = std::max(amax_x, xv);
      const int p = static_cast<int>((c - k0) / 4);
      const int r = static_cast<int>((c - k0) % 4);
      sum_abs_w_hat += std::fabs(static_cast<double>(ti8[p * 64 + 4 * j + r]) * scale_w);
    }
    const double scale_x = amax_x / 127.0;
    bound += 0.5 * scale_w * sum_abs_x + 0.5 * scale_x * sum_abs_w_hat;
  }
  return static_cast<float>(bound);
}

}  // namespace ktx
