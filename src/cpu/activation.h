// Elementwise / normalization primitives shared by the CPU and virtual-GPU
// execution paths. All operate on f32 buffers.

#ifndef KTX_SRC_CPU_ACTIVATION_H_
#define KTX_SRC_CPU_ACTIVATION_H_

#include <cstdint>

namespace ktx {

// SwiGLU gating: out[i] = silu(gate[i]) * up[i], silu(x) = x * sigmoid(x).
// This is the activation used by the DeepSeek / Qwen expert FFNs.
void SiluMul(const float* gate, const float* up, float* out, std::int64_t n);

float Silu(float x);
float Gelu(float x);

// In-place numerically-stable softmax over n values.
void Softmax(float* x, std::int64_t n);

// RMSNorm: out = x / sqrt(mean(x^2) + eps) * weight.
void RmsNorm(const float* x, const float* weight, float* out, std::int64_t n,
             float eps = 1e-6f);

// out[i] += x[i] (residual adds).
void AddInPlace(float* out, const float* x, std::int64_t n);
// out[i] += scale * x[i].
void AxpyInPlace(float* out, const float* x, float scale, std::int64_t n);

}  // namespace ktx

#endif  // KTX_SRC_CPU_ACTIVATION_H_
