#include "src/cpu/cpu_features.h"

#include <sstream>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif
#endif

namespace ktx {

namespace {

#if defined(__x86_64__) || defined(__i386__)

constexpr int kArchReqXcompPerm = 0x1023;  // ARCH_REQ_XCOMP_PERM
constexpr int kXfeatureXtiledata = 18;

bool RequestAmxPermission() {
#if defined(__linux__) && defined(SYS_arch_prctl)
  return syscall(SYS_arch_prctl, kArchReqXcompPerm, kXfeatureXtiledata) == 0;
#else
  return false;
#endif
}

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned int eax = 0;
  unsigned int ebx = 0;
  unsigned int ecx = 0;
  unsigned int edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) {
    return f;
  }
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  f.avx2 = (ebx >> 5) & 1;
  {
    unsigned int a1 = 0;
    unsigned int b1 = 0;
    unsigned int c1 = 0;
    unsigned int d1 = 0;
    __cpuid(1, a1, b1, c1, d1);
    f.fma = (c1 >> 12) & 1;
  }
  f.avx512f = (ebx >> 16) & 1;
  f.avx512bw = (ebx >> 30) & 1;
  f.avx512vl = (ebx >> 31) & 1;
  f.avx512_vnni = (ecx >> 11) & 1;
  f.amx_bf16 = (edx >> 22) & 1;
  f.amx_tile = (edx >> 24) & 1;
  f.amx_int8 = (edx >> 25) & 1;
  __cpuid_count(7, 1, eax, ebx, ecx, edx);
  f.avx512_bf16 = (eax >> 5) & 1;
  if (f.amx_tile) {
    f.amx_usable = RequestAmxPermission();
  }
  return f;
}

#else

CpuFeatures Detect() { return CpuFeatures{}; }

#endif

}  // namespace

std::string CpuFeatures::ToString() const {
  std::ostringstream os;
  os << "avx2=" << avx2 << " avx512f=" << avx512f << " avx512bw=" << avx512bw
     << " avx512vl=" << avx512vl << " avx512_bf16=" << avx512_bf16
     << " avx512_vnni=" << avx512_vnni << " amx_tile=" << amx_tile << " amx_int8=" << amx_int8
     << " amx_bf16=" << amx_bf16 << " amx_usable=" << amx_usable << " fma=" << fma;
  return os.str();
}

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool NativeAmxAvailable() {
#if defined(KTX_HAVE_NATIVE_SIMD)
  const CpuFeatures& f = GetCpuFeatures();
  return f.amx_usable && f.amx_bf16 && f.amx_int8;
#else
  return false;
#endif
}

bool NativeAvx512Available() {
#if defined(KTX_HAVE_NATIVE_SIMD)
  const CpuFeatures& f = GetCpuFeatures();
  return f.avx512f && f.avx512bw && f.avx512vl && f.avx512_bf16 && f.avx512_vnni;
#else
  return false;
#endif
}

bool NativeAvx2Available() {
#if defined(KTX_HAVE_NATIVE_SIMD)
  const CpuFeatures& f = GetCpuFeatures();
  return f.avx2 && f.fma;
#else
  return false;
#endif
}

}  // namespace ktx
