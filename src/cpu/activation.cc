#include "src/cpu/activation.h"

#include <algorithm>
#include <cmath>

namespace ktx {

float Silu(float x) { return x / (1.0f + std::exp(-x)); }

float Gelu(float x) {
  // tanh approximation (matches common framework defaults).
  constexpr float kC0 = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kC1 = 0.044715f;
  return 0.5f * x * (1.0f + std::tanh(kC0 * (x + kC1 * x * x * x)));
}

void SiluMul(const float* gate, const float* up, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = Silu(gate[i]) * up[i];
  }
}

void Softmax(float* x, std::int64_t n) {
  if (n <= 0) {
    return;
  }
  float max_val = x[0];
  for (std::int64_t i = 1; i < n; ++i) {
    max_val = std::max(max_val, x[i]);
  }
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max_val);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] *= inv;
  }
}

void RmsNorm(const float* x, const float* weight, float* out, std::int64_t n, float eps) {
  double ss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    ss += static_cast<double>(x[i]) * x[i];
  }
  const float inv = 1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(n)) + eps);
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = x[i] * inv * weight[i];
  }
}

void AddInPlace(float* out, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] += x[i];
  }
}

void AxpyInPlace(float* out, const float* x, float scale, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] += scale * x[i];
  }
}

}  // namespace ktx
