// Software model of the Intel AMX tile architecture (§2.2, §3.2).
//
// Each AMX core exposes eight tile registers of 16 rows x 64 bytes. The two
// matrix-multiply instructions this library uses are
//
//   TDPBF16PS  C(f32 16x16) += A(16x32 bf16) . B(16x32 bf16, VNNI-2 layout)
//   TDPBSSD    C(i32 16x16) += A(16x64 i8)   . B(16x64 i8,  VNNI-4 layout)
//
// where the B tile holds a K-major "VNNI" repack of the weight block:
//   bf16:  B.row(p)[2*j + r] = W[n0 + j][k0 + 2*p + r]   (p<16, j<16, r<2)
//   int8:  B.row(p)[4*j + r] = W[n0 + j][k0 + 4*p + r]   (p<16, j<16, r<4)
//
// TileEmu implements these semantics bit-exactly in scalar code so the whole
// AMX kernel stack is testable on any host. When the machine grants AMX
// permission (cpu_features.h), amx_native.cc runs the same layout with real
// tile instructions.

#ifndef KTX_SRC_CPU_TILE_H_
#define KTX_SRC_CPU_TILE_H_

#include <cstdint>
#include <cstring>

#include "src/tensor/dtype.h"

namespace ktx {

inline constexpr int kTileRows = 16;       // max rows per tile register
inline constexpr int kTileBytesPerRow = 64;
inline constexpr int kTileBytes = kTileRows * kTileBytesPerRow;  // 1 KiB
inline constexpr int kKBlockBf16 = 32;     // K elements covered by one bf16 tile
inline constexpr int kKBlockInt8 = 64;     // K elements covered by one int8 tile
inline constexpr int kKBlockF32 = 16;      // K elements covered by one f32 tile
inline constexpr int kNBlock = 16;         // N outputs covered by one tile

// One emulated tile register.
struct TileReg {
  alignas(64) std::uint8_t data[kTileRows][kTileBytesPerRow];

  void Zero() { std::memset(data, 0, sizeof(data)); }
  // Loads `rows` rows of `bytes_per_row` bytes with the given source stride.
  void Load(const void* base, int stride_bytes, int rows = kTileRows,
            int bytes_per_row = kTileBytesPerRow);
};

// Emulated accumulator (f32 or i32 view over the same 16x16 grid).
struct AccTile {
  alignas(64) float f32[kTileRows][kNBlock];

  void Zero() { std::memset(f32, 0, sizeof(f32)); }
  std::int32_t* i32() { return reinterpret_cast<std::int32_t*>(&f32[0][0]); }
  const std::int32_t* i32() const { return reinterpret_cast<const std::int32_t*>(&f32[0][0]); }
};

// C += A . B with TDPBF16PS semantics (BF16 inputs, FP32 accumulate).
// `a_rows` limits the active A rows (ragged final M block).
void TdpBf16Ps(AccTile& c, const TileReg& a, const TileReg& b, int a_rows = kTileRows);

// C += A . B with TDPBSSD semantics (signed i8 inputs, i32 accumulate).
void TdpBssd(AccTile& c, const TileReg& a, const TileReg& b, int a_rows = kTileRows);

}  // namespace ktx

#endif  // KTX_SRC_CPU_TILE_H_
