// Cache-friendly GEMM kernels on the AMX tile layout, with ARI-based dispatch
// (paper §3.2, Fig. 6 / Fig. 7).
//
// Four kernel kinds share the packed layout:
//   * kAmx    — full-tile kernel: 16 activation rows per pass, one TDP*
//               instruction per (A,B) tile pair, accumulators live in tile
//               registers. Best at high arithmetic intensity (prefill).
//   * kAvx512 — row-at-a-time vector kernel on the same tiles. Best at
//               <= ~4 tokens per expert (decode), where AMX wastes 16-row
//               tile passes on mostly-padding rows.
//   * kAvx2   — the same row kernel shape on 8-lane vectors, for hosts
//               without AVX-512.
//   * kScalar — the portable tile emulation, always available.
//
// Every kind follows ONE canonical op sequence per dtype (tile.h documents
// the bf16 sequence; f32 is a per-output ascending-k fma chain; the int8/int4
// integer dot is exact and its f32 rescale is a fixed mul/mul/add per
// k-block), so all selectable variants produce bit-identical results. The
// kernel-variant registry (kernel_registry.h) is the authoritative table of
// {kind, impl} entries with availability predicates and per-variant scratch
// sizing; GemmPacked resolves through it.

#ifndef KTX_SRC_CPU_GEMM_H_
#define KTX_SRC_CPU_GEMM_H_

#include <cstddef>
#include <cstdint>

#include "src/cpu/layout.h"
#include "src/tensor/tensor.h"

namespace ktx {

enum class KernelKind {
  kAmx,
  kAvx512,
  kAvx2,
  kScalar,
};

enum class KernelImpl {
  kAuto,      // native when available, else next available tier down
  kEmulated,  // force the portable tile emulation
  kNative,    // force real instructions (caller must check availability)
};

struct GemmOptions {
  KernelKind kind = KernelKind::kAmx;
  KernelImpl impl = KernelImpl::kAuto;
  bool accumulate = false;  // y += result instead of y = result
  // Restrict the computation to output tile bands [nb_begin, nb_end) — the
  // unit the dynamic task scheduler chunks work by (Fig. 6 step 1). The
  // default covers the whole matrix. Output columns keep absolute indices.
  std::int64_t nb_begin = 0;
  std::int64_t nb_end = -1;  // -1: all n-blocks
  // Caller-provided scratch region for the kernel's per-call temporaries
  // (activation repack buffers, quantization scales, emulated tile registers).
  // Must hold at least GemmScratchBytes(w) bytes and be private to the calling
  // thread for the duration of the call. When absent or too small the kernel
  // falls back to a thread-local buffer — correct, but the buffer is a heap
  // allocation on first use per thread, which the zero-allocation decode path
  // cannot afford.
  void* scratch = nullptr;
  std::size_t scratch_bytes = 0;
};

// y[m][n] (f32, leading dim ldy) = x[m][k] (f32, leading dim ldx) * W^T,
// where W is `w` packed as [n, k].
void GemmPacked(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                float* y, std::int64_t ldy, const GemmOptions& opts);

// Scalar f32 reference (no bf16 rounding, no quantization): ground truth for
// error bounds in tests.
void RefGemm(const float* x, std::int64_t m, std::int64_t ldx, const Tensor& w, float* y,
             std::int64_t ldy, bool accumulate = false);

// The portable tile-emulation entry point (all dtypes): the reference every
// registered variant must match bit-exactly. Exposed for the kernel registry
// and the bit-identity matrix tests; ordinary callers go through GemmPacked.
void EmulatedGemm(const float* x, std::int64_t m, std::int64_t ldx, const PackedMatrix& w,
                  float* y, std::int64_t ldy, bool accumulate, std::int64_t nb_begin,
                  std::int64_t nb_end, void* scratch, std::size_t scratch_bytes);

// The ARI-based kernel switch (paper Fig. 7): a row kernel wins at or below
// `threshold` tokens per expert, the AMX tile kernel above it — restricted to
// kinds whose native kernels this host can actually run (a no-AVX-512 machine
// gets kAvx2, a plain machine kScalar; kAmx is never chosen without usable
// AMX). Defined in kernel_registry.cc; see SelectKernelWith for the
// availability-injected variant tests use.
KernelKind SelectKernel(std::int64_t tokens_per_expert, std::int64_t threshold = 4);

// True if the requested (kind, impl) combination can execute on this host.
bool KernelAvailable(KernelKind kind, KernelImpl impl);

// Upper bound on the scratch bytes any kernel (any kind/impl/dtype) needs for
// one GemmPacked call against `w`: the registry-wide max over every variant's
// own scratch requirement. Callers that preallocate per-worker scratch size it
// with this so a single region serves every dispatch decision.
std::size_t GemmScratchBytes(const PackedMatrix& w);

// Grow-only thread-local scratch: returns a 64-byte-aligned region of at least
// `bytes` bytes owned by the calling thread. Fallback for callers that did not
// provide GemmOptions::scratch; allocates at most O(log max-size) times per
// thread lifetime.
void* GemmThreadScratch(std::size_t bytes);

}  // namespace ktx

#endif  // KTX_SRC_CPU_GEMM_H_
