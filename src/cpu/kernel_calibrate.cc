#include "src/cpu/kernel_calibrate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/cpu/cpu_features.h"
#include "src/cpu/layout.h"
#include "src/tensor/tensor.h"

namespace ktx {

namespace {

constexpr int kProfileVersion = 1;

const char* DTypeClassName(DType dtype) {
  if (dtype == DType::kF32) {
    return "f32";
  }
  return dtype == DType::kBF16 ? "bf16" : "quant";
}

std::vector<KernelDispatchTable::Segment>* ClassSegments(KernelDispatchTable* table,
                                                         std::string_view name) {
  if (name == "f32") {
    return &table->f32;
  }
  if (name == "bf16") {
    return &table->bf16;
  }
  if (name == "quant") {
    return &table->quant;
  }
  return nullptr;
}

std::optional<KernelKind> KindFromName(std::string_view name) {
  for (KernelKind k : {KernelKind::kAmx, KernelKind::kAvx512, KernelKind::kAvx2,
                       KernelKind::kScalar}) {
    if (name == KernelKindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

// The kinds the calibrated switch may choose between for `dtype`: every native
// variant this host can run and that supports the dtype, or the scalar
// emulation when no native exists. (Emulated AMX/AVX-512 are test-only
// opt-ins, never dispatch candidates.)
std::vector<KernelKind> DispatchCandidates(DType dtype) {
  std::vector<KernelKind> kinds;
  for (const KernelVariant& v : KernelRegistry()) {
    if (v.impl == KernelImpl::kNative && v.available() && v.supports_dtype(dtype)) {
      kinds.push_back(v.kind);
    }
  }
  if (kinds.empty()) {
    kinds.push_back(KernelKind::kScalar);
  }
  return kinds;
}

const KernelVariant& VariantFor(KernelKind kind) {
  if (kind == KernelKind::kScalar) {
    return *FindKernelVariant(KernelKind::kScalar, KernelImpl::kEmulated);
  }
  return *FindKernelVariant(kind, KernelImpl::kNative);
}

struct TimedPoint {
  KernelKind kind;
  double ns = 0.0;
};

// Fits piecewise-constant segments from per-grid-point winners. Where the
// winner flips between adjacent grid points the boundary is interpolated from
// the two kinds' (assumed locally linear) time curves, so a coarse grid still
// yields a tight crossover.
std::vector<KernelDispatchTable::Segment> FitSegments(
    const std::vector<std::int64_t>& grid,
    const std::vector<std::vector<TimedPoint>>& points /* [grid][candidate] */) {
  std::vector<KernelDispatchTable::Segment> segments;
  if (grid.empty()) {
    return segments;
  }
  auto winner = [&](std::size_t gi) {
    const auto& row = points[gi];
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c].ns < row[best].ns) {
        best = c;
      }
    }
    return best;
  };
  std::size_t prev = winner(0);
  segments.push_back({1, points[0][prev].kind});
  for (std::size_t gi = 1; gi < grid.size(); ++gi) {
    const std::size_t cur = winner(gi);
    if (cur == prev) {
      continue;
    }
    // Interpolate where the two curves cross in (m, ns) between the grid
    // neighbours; the new winner takes over from the first integer m past it.
    const double m0 = static_cast<double>(grid[gi - 1]);
    const double m1 = static_cast<double>(grid[gi]);
    const double d0 = points[gi - 1][prev].ns - points[gi - 1][cur].ns;  // <= 0
    const double d1 = points[gi][prev].ns - points[gi][cur].ns;         // > 0
    double cross = m1;
    if (d1 - d0 > 0.0) {
      cross = m0 + (m1 - m0) * (-d0) / (d1 - d0);
    }
    auto min_m = static_cast<std::int64_t>(std::ceil(cross));
    min_m = std::clamp<std::int64_t>(min_m, grid[gi - 1] + 1, grid[gi]);
    segments.push_back({min_m, points[gi][cur].kind});
    prev = cur;
  }
  return segments;
}

}  // namespace

KernelKind KernelDispatchTable::Choose(DType dtype, std::int64_t tokens_per_expert) const {
  const std::vector<Segment>& segs = ForDType(dtype);
  if (segs.empty()) {
    return SelectKernel(tokens_per_expert);
  }
  KernelKind kind = segs.front().kind;
  for (const Segment& s : segs) {
    if (s.min_m > tokens_per_expert) {
      break;
    }
    kind = s.kind;
  }
  return kind;
}

std::string KernelProfileSignature(const KernelCalibrationOptions& opts) {
  std::ostringstream sig;
  sig << "v" << kProfileVersion << ";" << GetCpuFeatures().ToString() << ";native="
#if defined(KTX_HAVE_NATIVE_SIMD)
      << 1
#else
      << 0
#endif
      << ";grid=";
  for (std::int64_t m : opts.grid) {
    sig << m << ",";
  }
  sig << ";n=" << opts.n << ";k=" << opts.k << ";band=" << opts.band_blocks;
  return sig.str();
}

KernelCalibrationResult CalibrateKernels(const KernelCalibrationOptions& opts) {
  KernelCalibrationResult result;
  result.signature = KernelProfileSignature(opts);
  KTX_CHECK(!opts.grid.empty());
  const std::int64_t max_m = *std::max_element(opts.grid.begin(), opts.grid.end());

  Rng rng(0x5ca1ab1eULL);
  const Tensor wf = Tensor::Randn({opts.n, opts.k}, rng);
  std::vector<float> x(static_cast<std::size_t>(max_m * opts.k));
  for (auto& v : x) {
    v = 0.0625f * static_cast<float>(static_cast<std::int64_t>(rng.NextU64() % 64) - 32);
  }
  std::vector<float> y(static_cast<std::size_t>(max_m * opts.n));

  // One representative dtype per class; kI4 shares the quant class with kI8.
  for (DType dtype : {DType::kF32, DType::kBF16, DType::kI8}) {
    auto packed = PackedMatrix::Pack(wf, dtype);
    KTX_CHECK(packed.ok()) << packed.status().ToString();
    const PackedMatrix& w = packed.value();
    const std::vector<KernelKind> candidates = DispatchCandidates(dtype);
    std::vector<std::vector<TimedPoint>> points(opts.grid.size());
    for (std::size_t gi = 0; gi < opts.grid.size(); ++gi) {
      const std::int64_t m = opts.grid[gi];
      for (KernelKind kind : candidates) {
        const KernelVariant& v = VariantFor(kind);
        double best_ns = 0.0;
        for (int rep = -opts.warmup; rep < opts.reps; ++rep) {
          Stopwatch sw;
          // Band-granular calls: the MoE scheduler chunks every GEMM into
          // band_blocks-sized tasks, so per-call setup cost is part of what
          // the crossover must price in.
          for (std::int64_t b0 = 0; b0 < w.n_blocks(); b0 += opts.band_blocks) {
            const std::int64_t b1 = std::min(w.n_blocks(), b0 + opts.band_blocks);
            v.gemm(x.data(), m, opts.k, w, y.data(), opts.n, /*accumulate=*/false, b0, b1,
                   nullptr, 0);
          }
          const double ns = sw.ElapsedSeconds() * 1e9;
          if (rep >= 0) {
            ++result.microbench_samples;
            if (best_ns == 0.0 || ns < best_ns) {
              best_ns = ns;
            }
          }
        }
        points[gi].push_back({kind, best_ns});
        result.measurements.push_back({VariantFor(kind).name, dtype, m, best_ns});
      }
    }
    std::vector<KernelDispatchTable::Segment>* segs =
        ClassSegments(&result.table, DTypeClassName(dtype));
    *segs = FitSegments(opts.grid, points);
  }
  return result;
}

bool WriteKernelProfile(const KernelCalibrationResult& result,
                        const KernelCalibrationOptions& opts, const std::string& path) {
  JsonWriter w;
  w.BeginObject();
  w.Field("version", kProfileVersion);
  w.Field("signature", result.signature);
  w.Key("grid");
  w.BeginArray();
  for (std::int64_t m : opts.grid) {
    w.Int(m);
  }
  w.EndArray();
  w.Key("shape");
  w.BeginObject();
  w.Field("n", opts.n);
  w.Field("k", opts.k);
  w.EndObject();
  w.Key("measurements");
  w.BeginArray();
  for (const KernelMeasurement& meas : result.measurements) {
    w.BeginObject();
    w.Field("variant", meas.variant);
    w.Field("dtype", DTypeClassName(meas.dtype));
    w.Field("m", meas.m);
    w.Key("ns_per_call");
    w.FixedDouble(meas.ns_per_call, 1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("table");
  w.BeginObject();
  const std::pair<const char*, const std::vector<KernelDispatchTable::Segment>*> classes[] = {
      {"f32", &result.table.f32}, {"bf16", &result.table.bf16}, {"quant", &result.table.quant}};
  for (const auto& [name, segs] : classes) {
    w.Key(name);
    w.BeginArray();
    for (const KernelDispatchTable::Segment& s : *segs) {
      w.BeginObject();
      w.Field("min_m", s.min_m);
      w.Field("kind", KernelKindName(s.kind));
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    KTX_LOG(Warning) << "cannot write kernel profile to " << path;
    return false;
  }
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

bool ParseKernelProfile(const std::string& text, const std::string& expected_signature,
                        KernelCalibrationResult* out, std::string* why) {
  JsonValue root;
  std::string parse_error;
  if (!ParseJson(text, &root, &parse_error)) {
    *why = "unparseable JSON: " + parse_error;
    return false;
  }
  if (!root.is_object()) {
    *why = "top-level value is not an object";
    return false;
  }
  if (root.IntOr("version", -1) != kProfileVersion) {
    *why = "profile version mismatch";
    return false;
  }
  const std::string_view sig = root.StringOr("signature", "");
  if (sig != expected_signature) {
    *why = "signature mismatch (different CPU, build, or calibration grid)";
    return false;
  }
  const JsonValue* table = root.Find("table");
  if (table == nullptr || !table->is_object()) {
    *why = "missing table object";
    return false;
  }
  KernelCalibrationResult loaded;
  loaded.signature = std::string(sig);
  loaded.from_cache = true;
  for (const auto& [class_name, segs_json] : table->object) {
    std::vector<KernelDispatchTable::Segment>* segs =
        ClassSegments(&loaded.table, class_name);
    if (segs == nullptr) {
      *why = "unknown dtype class '" + class_name + "'";
      return false;
    }
    if (!segs_json.is_array()) {
      *why = "dtype class '" + class_name + "' is not an array";
      return false;
    }
    for (const JsonValue& seg : segs_json.array) {
      if (!seg.is_object()) {
        *why = "segment is not an object";
        return false;
      }
      const std::int64_t min_m = seg.IntOr("min_m", -1);
      const std::optional<KernelKind> kind = KindFromName(seg.StringOr("kind", ""));
      if (min_m < 1 || !kind.has_value()) {
        *why = "segment with bad min_m or unknown kind";
        return false;
      }
      segs->push_back({min_m, *kind});
    }
    // Choose() depends on ascending min_m; reject a shuffled profile.
    for (std::size_t i = 1; i < segs->size(); ++i) {
      if ((*segs)[i].min_m <= (*segs)[i - 1].min_m) {
        *why = "segments out of order";
        return false;
      }
    }
  }
  if (loaded.table.empty()) {
    *why = "table has no segments";
    return false;
  }
  if (const JsonValue* meas = root.Find("measurements"); meas != nullptr && meas->is_array()) {
    for (const JsonValue& mj : meas->array) {
      if (!mj.is_object()) {
        continue;
      }
      KernelMeasurement km;
      km.variant = std::string(mj.StringOr("variant", "?"));
      const std::string_view cls = mj.StringOr("dtype", "bf16");
      km.dtype = cls == "f32" ? DType::kF32 : (cls == "quant" ? DType::kI8 : DType::kBF16);
      km.m = mj.IntOr("m", 0);
      km.ns_per_call = mj.NumberOr("ns_per_call", 0.0);
      loaded.measurements.push_back(std::move(km));
    }
  }
  *out = std::move(loaded);
  return true;
}

KernelCalibrationResult CalibrateOrLoad(const KernelCalibrationOptions& opts) {
  const std::string signature = KernelProfileSignature(opts);
  if (!opts.profile_path.empty()) {
    std::ifstream in(opts.profile_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      KernelCalibrationResult loaded;
      std::string why;
      if (ParseKernelProfile(buf.str(), signature, &loaded, &why)) {
        KTX_LOG(Info) << "kernel dispatch profile loaded from " << opts.profile_path
                      << " (calibration skipped)";
        return loaded;
      }
      KTX_LOG(Warning) << "kernel dispatch profile " << opts.profile_path << " rejected ("
                       << why << "); recalibrating";
    }
  }
  KernelCalibrationResult fresh = CalibrateKernels(opts);
  if (!opts.profile_path.empty()) {
    if (WriteKernelProfile(fresh, opts, opts.profile_path)) {
      KTX_LOG(Info) << "kernel dispatch profile written to " << opts.profile_path;
    }
  }
  return fresh;
}

}  // namespace ktx
