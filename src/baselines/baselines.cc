#include "src/baselines/baselines.h"

namespace ktx {

EngineOptions FiddlerEngineOptions() {
  EngineOptions o;
  o.async_overlap = false;        // blocking per-layer round-trip
  o.use_cuda_graph = false;       // PyTorch eager launches
  o.numa_mode = NumaMode::kNaiveInterleaved;
  o.gpu_micro_per_op = 29;        // ~7000 launches/token on DS-3 (Fig. 4)
  o.device.launch_latency_us = 16.0;
  o.moe.schedule = ScheduleKind::kStatic;  // no dynamic task queue
  o.n_deferred = 0;
  return o;
}

EngineOptions LlamaCppEngineOptions() {
  EngineOptions o;
  o.async_overlap = false;
  o.use_cuda_graph = false;       // disabled to avoid re-capture overhead
  o.numa_mode = NumaMode::kNaiveInterleaved;
  o.gpu_micro_per_op = 12;        // ~3000 launches/token after fusion
  o.device.launch_latency_us = 5.0;
  o.moe.schedule = ScheduleKind::kStatic;
  o.n_deferred = 0;
  return o;
}

EngineOptions KTransformersEngineOptions(int n_deferred) {
  EngineOptions o;
  o.async_overlap = true;
  o.use_cuda_graph = true;
  o.numa_mode = NumaMode::kTensorParallel;
  o.gpu_micro_per_op = 1;
  o.device.launch_latency_us = 5.0;
  o.moe.schedule = ScheduleKind::kDynamic;
  o.n_deferred = n_deferred;
  return o;
}

std::unique_ptr<HybridEngine> MakeFiddlerEngine(const MoeModelConfig& config,
                                                std::shared_ptr<const ModelWeights> weights) {
  return std::make_unique<HybridEngine>(config, std::move(weights), FiddlerEngineOptions());
}

std::unique_ptr<HybridEngine> MakeLlamaCppEngine(const MoeModelConfig& config,
                                                 std::shared_ptr<const ModelWeights> weights) {
  return std::make_unique<HybridEngine>(config, std::move(weights), LlamaCppEngineOptions());
}

std::unique_ptr<HybridEngine> MakeKTransformersEngine(
    const MoeModelConfig& config, std::shared_ptr<const ModelWeights> weights, int n_deferred) {
  return std::make_unique<HybridEngine>(config, std::move(weights),
                                        KTransformersEngineOptions(n_deferred));
}

}  // namespace ktx
