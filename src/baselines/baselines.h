// Baseline systems (paper §6.1).
//
// Fiddler [24] and llama.cpp [14] both implement Fiddler-style expert
// offloading: routed experts on the CPU, everything else on the GPU. They
// share the functional math with KTransformers; what differs — and what the
// paper's speedups come from — is scheduling and kernel quality:
//
//   * Fiddler: PyTorch-driven. A blocking CPU round-trip per MoE layer, no
//     operator fusion (3 framework ops per expert), no CUDA graphs, ~29 real
//     kernels per logical op at 16 us launch latency, NUMA-oblivious
//     interleaved weights, oneDNN/generic kernels.
//   * llama.cpp: C++ graph walker. Fused operators, 5 us launches, CUDA
//     graphs disabled, still a blocking per-layer round-trip and
//     NUMA-oblivious placement. (The paper extends it with expert-level
//     offload; this configuration models that patched version.)
//
// Each baseline exists twice, deliberately from the same underlying code:
//   * a *functional* engine (a HybridEngine configured with the baseline's
//     scheduling semantics) proving the baselines compute the same model;
//   * a *timed* StrategySpec (core/strategy_sim.h) regenerating the paper's
//     performance comparisons.

#ifndef KTX_SRC_BASELINES_BASELINES_H_
#define KTX_SRC_BASELINES_BASELINES_H_

#include <memory>

#include "src/core/engine.h"
#include "src/core/strategy_sim.h"

namespace ktx {

// Engine options encoding each baseline's scheduling behaviour. Callers may
// tweak the returned options (e.g. cpu_weight_dtype) before building.
EngineOptions FiddlerEngineOptions();
EngineOptions LlamaCppEngineOptions();
EngineOptions KTransformersEngineOptions(int n_deferred = 0);

std::unique_ptr<HybridEngine> MakeFiddlerEngine(const MoeModelConfig& config,
                                                std::shared_ptr<const ModelWeights> weights);
std::unique_ptr<HybridEngine> MakeLlamaCppEngine(const MoeModelConfig& config,
                                                 std::shared_ptr<const ModelWeights> weights);
std::unique_ptr<HybridEngine> MakeKTransformersEngine(
    const MoeModelConfig& config, std::shared_ptr<const ModelWeights> weights,
    int n_deferred = 0);

}  // namespace ktx

#endif  // KTX_SRC_BASELINES_BASELINES_H_
