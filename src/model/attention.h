// Reference attention implementations: GQA (Qwen2-style) and MLA
// (DeepSeek-style multi-head latent attention).
//
// These are the f32 ground-truth kernels. In the hybrid engine they run as
// vcuda GPU kernels (the paper injects FlashInfer's MLA kernel here); the
// math is identical. The MLA path materializes per-position keys/values from
// the cached latent on every step — the paper's matrix-absorption optimization
// changes arithmetic cost, not results, so it is modeled in the cost model
// rather than re-implemented.

#ifndef KTX_SRC_MODEL_ATTENTION_H_
#define KTX_SRC_MODEL_ATTENTION_H_

#include "src/common/status.h"
#include "src/model/config.h"
#include "src/model/kv_cache.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct AttentionWeights {
  // GQA.
  Tensor wq;  // [heads*head_dim, hidden]
  Tensor wk;  // [kv_heads*head_dim, hidden]
  Tensor wv;  // [kv_heads*head_dim, hidden]
  // MLA.
  Tensor w_dq;   // [q_lora, hidden]
  Tensor w_uq;   // [heads*(head_dim+rope_dim), q_lora]
  Tensor w_dkv;  // [kv_lora+rope_dim, hidden] (joint latent + decoupled key)
  Tensor w_uk;   // [heads*head_dim, kv_lora]
  Tensor w_uv;   // [heads*v_head_dim, kv_lora]
  // Both.
  Tensor wo;  // [hidden, heads*{head_dim|v_head_dim}]
};

// Rotates `dim` leading values of vec in (even, odd) pairs by position
// `pos` (theta base 10000) — standard RoPE.
void ApplyRope(float* vec, std::int64_t dim, std::int64_t pos);

// Processes `m` new tokens whose first absolute position is `pos0`
// (the cache already holds positions [0, pos0)). Appends to the cache through
// the row view and writes attention output (pre-residual) to out[m, hidden].
// Causal masking. Rows are addressed via KvLayerView, so contiguous and paged
// caches produce bit-identical results (paged windowed GEMMs run per
// physically-contiguous block run). Returns kResourceExhausted — without
// touching the cache — when [pos0, pos0+m) overflows config.max_seq or the
// view's prepared capacity; engine Try* entry points propagate this instead
// of aborting.
Status AttentionForward(const MoeModelConfig& config, const AttentionWeights& w, const float* x,
                        std::int64_t m, std::int64_t pos0, const KvLayerView& cache, float* out);

// Batched decode: `rows` independent single-token streams, one per row of
// x[rows, hidden]. Row r attends against caches[r]->layer(layer) at absolute
// position positions[r]. Each row runs the exact m=1 AttentionForward math, so
// outputs are bit-identical to `rows` sequential single-session decode steps
// in any batch composition. Stops at the first row whose append would
// overflow (earlier rows' cache writes stand; the caller's position
// accounting is untouched because positions only advance after a full step).
Status AttentionDecodeBatch(const MoeModelConfig& config, const AttentionWeights& w,
                            const float* x, std::int64_t rows, const std::int64_t* positions,
                            KvCache* const* caches, int layer, float* out);

// FLOP / byte estimates for the cost model (per layer, given m new tokens at
// context length `seq`). Accounts for MLA matrix absorption on the decode
// path when config.attention == kMla.
struct AttentionCost {
  double flops = 0.0;
  double bytes = 0.0;
};
AttentionCost EstimateAttentionCost(const MoeModelConfig& config, std::int64_t m,
                                    std::int64_t seq, double bytes_per_weight);

}  // namespace ktx

#endif  // KTX_SRC_MODEL_ATTENTION_H_
