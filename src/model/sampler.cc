#include "src/model/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/logging.h"
#include "src/model/reference_model.h"

namespace ktx {

int Sampler::Sample(const Tensor& logits) {
  KTX_CHECK_EQ(logits.rank(), 2u);
  if (options_.temperature <= 0.0f) {
    return ArgmaxLastToken(logits);
  }
  const std::int64_t vocab = logits.dim(1);
  const float* row = logits.f32() + (logits.dim(0) - 1) * vocab;

  std::vector<int> order(static_cast<std::size_t>(vocab));
  std::iota(order.begin(), order.end(), 0);
  // Deterministic ordering under ties (index ascending) so the sampled token
  // stream depends only on (logits, options, seed), not on sort internals.
  const auto by_logit = [&](int a, int b) {
    return row[a] > row[b] || (row[a] == row[b] && a < b);
  };

  std::int64_t candidates = vocab;
  if (options_.top_k > 0) {
    candidates = std::min<std::int64_t>(candidates, options_.top_k);
  }
  if (candidates < vocab) {
    // Only the candidate prefix is ever read below; a full-vocab sort is
    // O(V log V) per token for nothing when top_k is small.
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(candidates),
                      order.end(), by_logit);
  } else {
    std::sort(order.begin(), order.end(), by_logit);
  }

  // Temperature-scaled softmax over the candidate prefix.
  std::vector<double> probs(static_cast<std::size_t>(candidates));
  const double inv_t = 1.0 / options_.temperature;
  const double max_logit = row[order[0]];
  double sum = 0.0;
  for (std::int64_t i = 0; i < candidates; ++i) {
    probs[static_cast<std::size_t>(i)] =
        std::exp((row[order[static_cast<std::size_t>(i)]] - max_logit) * inv_t);
    sum += probs[static_cast<std::size_t>(i)];
  }
  for (double& p : probs) {
    p /= sum;
  }

  // Nucleus truncation on the sorted prefix.
  if (options_.top_p < 1.0f) {
    double mass = 0.0;
    std::int64_t keep = 0;
    while (keep < candidates && mass < options_.top_p) {
      mass += probs[static_cast<std::size_t>(keep)];
      ++keep;
    }
    candidates = std::max<std::int64_t>(1, keep);
    double renorm = 0.0;
    for (std::int64_t i = 0; i < candidates; ++i) {
      renorm += probs[static_cast<std::size_t>(i)];
    }
    for (std::int64_t i = 0; i < candidates; ++i) {
      probs[static_cast<std::size_t>(i)] /= renorm;
    }
  }

  double r = rng_.NextDouble();
  for (std::int64_t i = 0; i < candidates; ++i) {
    r -= probs[static_cast<std::size_t>(i)];
    if (r <= 0.0) {
      return order[static_cast<std::size_t>(i)];
    }
  }
  return order[static_cast<std::size_t>(candidates - 1)];
}

}  // namespace ktx
