// Reference fp32 transformer: the functional ground truth.
//
// Runs the full architecture (RMSNorm, GQA/MLA attention with KV cache,
// dense + MoE FFNs with shared experts, gating) in plain f32. It also
// implements the Expert Deferral formula of §4.1 *directly* — the hybrid
// engine's asynchronous implementation is tested against this:
//
//   O_k = I_k + S_k(I_k) + R_k^imm(I_k)                          k = 1
//   O_k = I_k + S_k(I_k) + R_{k-1}^def(I_{k-1}) + R_k^imm(I_k)   1 < k < L
//   O_k = I_k + S_k(I_k) + R_{k-1}^def(I_{k-1}) + R_k^all(I_k)   k = L
//
// and Expert Skipping (the Fig. 13 baseline), which simply discards the
// lowest-scored experts instead of deferring them.

#ifndef KTX_SRC_MODEL_REFERENCE_MODEL_H_
#define KTX_SRC_MODEL_REFERENCE_MODEL_H_

#include <memory>
#include <vector>

#include "src/model/config.h"
#include "src/model/kv_cache.h"
#include "src/model/weights.h"

namespace ktx {

struct ForwardOptions {
  // Number of lowest-scored routing slots deferred to the next layer
  // (0 = standard execution). Not applied at the last MoE layer (§4.1).
  int n_deferred = 0;
  // Fig. 13 baseline: discard the affected experts instead of deferring.
  bool expert_skipping = false;
};

class RefModel {
 public:
  RefModel(MoeModelConfig config, std::shared_ptr<const ModelWeights> weights);

  const MoeModelConfig& config() const { return config_; }
  const ModelWeights& weights() const { return *weights_; }
  std::shared_ptr<const ModelWeights> weights_ptr() const { return weights_; }

  // Processes `tokens` starting at cache->position(); returns logits
  // [tokens.size(), vocab] and advances the cache.
  Tensor Forward(const std::vector<int>& tokens, KvCache* cache,
                 const ForwardOptions& options = {}) const;

  // Greedy generation: prefills `prompt`, then decodes `max_new` tokens.
  std::vector<int> GenerateGreedy(const std::vector<int>& prompt, int max_new,
                                  const ForwardOptions& options = {}) const;

 private:
  MoeModelConfig config_;
  std::shared_ptr<const ModelWeights> weights_;
};

// Argmax over the last row of a [tokens, vocab] logits tensor.
int ArgmaxLastToken(const Tensor& logits);

// out[tokens, hidden] += SwiGLU(x W_gate^T, x W_up^T) W_down^T — the dense /
// shared-expert FFN. Shared by the reference model and the hybrid engine's
// GPU-side shared-expert kernel.
void DenseFfnAdd(const Tensor& gate, const Tensor& up, const Tensor& down, const float* x,
                 std::int64_t tokens, std::int64_t hidden, float* out);

}  // namespace ktx

#endif  // KTX_SRC_MODEL_REFERENCE_MODEL_H_
