#include "src/model/reference_model.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/cpu/activation.h"
#include "src/cpu/gemm.h"
#include "src/cpu/moe_cpu.h"
#include "src/model/attention.h"
#include "src/model/gating.h"

namespace ktx {

// out[tokens, hidden] += SwiGLU dense FFN of x.
void DenseFfnAdd(const Tensor& gate, const Tensor& up, const Tensor& down, const float* x,
                 std::int64_t tokens, std::int64_t hidden, float* out) {
  const std::int64_t inter = gate.dim(0);
  std::vector<float> g(static_cast<std::size_t>(inter));
  std::vector<float> u(static_cast<std::size_t>(inter));
  std::vector<float> a(static_cast<std::size_t>(inter));
  std::vector<float> o(static_cast<std::size_t>(hidden));
  for (std::int64_t t = 0; t < tokens; ++t) {
    RefGemm(x + t * hidden, 1, hidden, gate, g.data(), inter);
    RefGemm(x + t * hidden, 1, hidden, up, u.data(), inter);
    SiluMul(g.data(), u.data(), a.data(), inter);
    RefGemm(a.data(), 1, inter, down, o.data(), hidden);
    AddInPlace(out + t * hidden, o.data(), hidden);
  }
}

RefModel::RefModel(MoeModelConfig config, std::shared_ptr<const ModelWeights> weights)
    : config_(std::move(config)), weights_(std::move(weights)) {
  KTX_CHECK(weights_ != nullptr);
  KTX_CHECK_EQ(static_cast<int>(weights_->layers.size()), config_.num_layers);
}

Tensor RefModel::Forward(const std::vector<int>& tokens, KvCache* cache,
                         const ForwardOptions& options) const {
  const std::int64_t m = static_cast<std::int64_t>(tokens.size());
  const std::int64_t hidden = config_.hidden;
  const std::int64_t pos0 = cache->position();
  KTX_CHECK_GE(options.n_deferred, 0);
  KTX_CHECK_LE(options.n_deferred, config_.top_k);

  // Trusted entry point: callers validated capacity (or accept the abort).
  // Paged caches also need their block table extended before rows are written.
  const Status prepared = cache->PrepareAppend(m);
  KTX_CHECK(prepared.ok()) << "KV cache overflow: " << prepared.ToString();

  Tensor x({m, hidden}, DType::kF32);
  for (std::int64_t t = 0; t < m; ++t) {
    KTX_CHECK(tokens[static_cast<std::size_t>(t)] >= 0 &&
              tokens[static_cast<std::size_t>(t)] < config_.vocab);
    std::memcpy(x.f32() + t * hidden,
                weights_->embedding.f32() + tokens[static_cast<std::size_t>(t)] * hidden,
                static_cast<std::size_t>(hidden) * sizeof(float));
  }

  Tensor normed({m, hidden}, DType::kF32);
  Tensor attn_out({m, hidden}, DType::kF32);
  Tensor pending_deferred;  // R_{k-1}^def(I_{k-1}), empty when none
  const int last_moe_layer = config_.num_layers - 1;

  for (int l = 0; l < config_.num_layers; ++l) {
    const LayerWeights& lw = weights_->layers[static_cast<std::size_t>(l)];
    // Attention block.
    for (std::int64_t t = 0; t < m; ++t) {
      RmsNorm(x.f32() + t * hidden, lw.attn_norm.f32(), normed.f32() + t * hidden, hidden);
    }
    const Status attn =
        AttentionForward(config_, lw.attn, normed.f32(), m, pos0, cache->layer(l),
                         attn_out.f32());
    KTX_CHECK(attn.ok()) << "KV cache overflow: " << attn.ToString();
    AddInPlace(x.f32(), attn_out.f32(), m * hidden);

    // FFN block.
    for (std::int64_t t = 0; t < m; ++t) {
      RmsNorm(x.f32() + t * hidden, lw.ffn_norm.f32(), normed.f32() + t * hidden, hidden);
    }
    if (!config_.is_moe_layer(l)) {
      DenseFfnAdd(lw.dense_gate, lw.dense_up, lw.dense_down, normed.f32(), m, hidden, x.f32());
      continue;
    }

    // MoE layer. `normed` is I_k.
    Tensor moe_out({m, hidden}, DType::kF32);
    if (config_.n_shared_experts > 0) {
      DenseFfnAdd(lw.shared_gate, lw.shared_up, lw.shared_down, normed.f32(), m, hidden,
               moe_out.f32());
    }
    const MoeRouting routing =
        ComputeRouting(config_, lw.router, lw.router_bias, normed.f32(), m);

    const bool is_last = l == last_moe_layer;
    const int affected = options.n_deferred;
    int immediate_end = config_.top_k;
    if (affected > 0 && (options.expert_skipping || !is_last)) {
      immediate_end = config_.top_k - affected;
    }
    RefMoeForward(lw.expert_gate, lw.expert_up, lw.expert_down, normed.f32(), m, routing, 0,
                  immediate_end, moe_out.f32());

    // Fold in the previous layer's deferred experts (deferral mode only).
    if (pending_deferred.numel() > 0) {
      AddInPlace(moe_out.f32(), pending_deferred.f32(), m * hidden);
      pending_deferred = Tensor();
    }
    // Compute this layer's deferred experts for the next layer.
    if (affected > 0 && !options.expert_skipping && !is_last) {
      pending_deferred = Tensor({m, hidden}, DType::kF32);
      RefMoeForward(lw.expert_gate, lw.expert_up, lw.expert_down, normed.f32(), m, routing,
                    immediate_end, config_.top_k, pending_deferred.f32());
    }
    AddInPlace(x.f32(), moe_out.f32(), m * hidden);
  }
  // A deferred contribution from the final layer would be lost; the formula
  // guarantees there is none.
  KTX_CHECK_EQ(pending_deferred.numel(), 0);

  Tensor logits({m, config_.vocab}, DType::kF32);
  for (std::int64_t t = 0; t < m; ++t) {
    RmsNorm(x.f32() + t * hidden, weights_->final_norm.f32(), normed.f32() + t * hidden,
            hidden);
  }
  RefGemm(normed.f32(), m, hidden, weights_->lm_head, logits.f32(), config_.vocab);
  cache->Advance(m);
  return logits;
}

std::vector<int> RefModel::GenerateGreedy(const std::vector<int>& prompt, int max_new,
                                          const ForwardOptions& options) const {
  KvCache cache(config_);
  std::vector<int> out;
  Tensor logits = Forward(prompt, &cache, options);
  int next = ArgmaxLastToken(logits);
  for (int i = 0; i < max_new; ++i) {
    out.push_back(next);
    logits = Forward({next}, &cache, options);
    next = ArgmaxLastToken(logits);
  }
  return out;
}

int ArgmaxLastToken(const Tensor& logits) {
  const std::int64_t vocab = logits.dim(1);
  const float* row = logits.f32() + (logits.dim(0) - 1) * vocab;
  int best = 0;
  for (std::int64_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) {
      best = static_cast<int>(v);
    }
  }
  return best;
}

}  // namespace ktx
