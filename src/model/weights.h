// Synthetic model weights.
//
// Real DeepSeek/Qwen checkpoints are 100 GB - 1.3 TB and unavailable here;
// weights are generated from a seed with fan-in-scaled Gaussian init so every
// functional experiment is reproducible. All layout, quantization, packing,
// placement and scheduling code consumes these tensors exactly as it would
// consume a loaded checkpoint.

#ifndef KTX_SRC_MODEL_WEIGHTS_H_
#define KTX_SRC_MODEL_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "src/model/attention.h"
#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct LayerWeights {
  Tensor attn_norm;  // [hidden]
  Tensor ffn_norm;   // [hidden]
  AttentionWeights attn;

  // Dense layers (config.first_dense_layers).
  Tensor dense_gate;  // [dense_inter, hidden]
  Tensor dense_up;
  Tensor dense_down;  // [hidden, dense_inter]

  // MoE layers.
  Tensor router;       // [num_experts, hidden]
  Tensor router_bias;  // [num_experts] (grouped gating selection bias)
  Tensor shared_gate;  // [shared_inter, hidden]
  Tensor shared_up;
  Tensor shared_down;  // [hidden, shared_inter]
  std::vector<Tensor> expert_gate;  // num_experts x [moe_inter, hidden]
  std::vector<Tensor> expert_up;
  std::vector<Tensor> expert_down;  // num_experts x [hidden, moe_inter]
};

struct ModelWeights {
  Tensor embedding;   // [vocab, hidden]
  Tensor final_norm;  // [hidden]
  Tensor lm_head;     // [vocab, hidden]
  std::vector<LayerWeights> layers;

  static ModelWeights Generate(const MoeModelConfig& config, std::uint64_t seed);
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_WEIGHTS_H_
