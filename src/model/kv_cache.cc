#include "src/model/kv_cache.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace ktx {

KvCache::KvCache(const MoeModelConfig& config)
    : attention_(config.attention),
      kv_dim_(config.num_kv_heads * config.head_dim),
      lora_(config.kv_lora_rank),
      rope_(config.rope_dim),
      max_seq_(config.max_seq) {
  layers_.resize(static_cast<std::size_t>(config.num_layers));
  for (auto& layer : layers_) {
    if (config.attention == AttentionKind::kMla) {
      layer.ckv = Tensor({config.max_seq, config.kv_lora_rank}, DType::kF32);
      layer.k_rope = Tensor({config.max_seq, config.rope_dim}, DType::kF32);
      bytes_per_position_ +=
          static_cast<std::size_t>(config.kv_lora_rank + config.rope_dim) * sizeof(float);
    } else {
      layer.k = Tensor({config.max_seq, kv_dim_}, DType::kF32);
      layer.v = Tensor({config.max_seq, kv_dim_}, DType::kF32);
      bytes_per_position_ += 2 * static_cast<std::size_t>(kv_dim_) * sizeof(float);
    }
  }
}

KvCache::KvCache(const MoeModelConfig& config, KvBlockPool* pool)
    : pool_(pool),
      attention_(config.attention),
      kv_dim_(config.num_kv_heads * config.head_dim),
      lora_(config.kv_lora_rank),
      rope_(config.rope_dim),
      max_seq_(config.max_seq),
      bytes_per_position_(pool->bytes_per_position()) {
  KTX_CHECK(pool_ != nullptr);
  KTX_CHECK_GE(max_seq_, 1) << "paged caches need a max_seq bound";
}

KvLayerView KvCache::layer(int i) const {
  KTX_CHECK(paged() || !layers_.empty()) << "layer() on a storage-free KvCache";
  KvLayerView view;
  view.kv_dim_ = kv_dim_;
  view.lora_ = lora_;
  view.rope_ = rope_;
  if (paged()) {
    view.k_ = pool_->k_base(i);
    view.v_ = pool_->v_base(i);
    view.ckv_ = pool_->ckv_base(i);
    view.k_rope_ = pool_->k_rope_base(i);
    view.table_ = block_table_.data();
    view.block_size_ = pool_->block_size();
    view.capacity_rows_ = reserved_rows();
  } else {
    // layer() is const but views are writable: attention appends rows in
    // place, matching the pre-paging KvLayerCache& contract.
    auto& storage = const_cast<LayerStorage&>(layers_[static_cast<std::size_t>(i)]);
    if (attention_ == AttentionKind::kMla) {
      view.ckv_ = storage.ckv.f32();
      view.k_rope_ = storage.k_rope.f32();
    } else {
      view.k_ = storage.k.f32();
      view.v_ = storage.v.f32();
    }
    view.capacity_rows_ = max_seq_;
  }
  return view;
}

std::int64_t KvCache::remaining() const {
  KTX_CHECK(has_capacity_bound())
      << "remaining() on an unbounded KvCache; check has_capacity_bound() first";
  const std::int64_t seq_left = max_seq_ - position_;
  if (!paged()) {
    return seq_left;
  }
  // Rows already reserved in the table are free to use; beyond that, every
  // available pool block adds block_size rows — minus one whole block when the
  // next append must first copy-on-write a shared tail.
  const std::int64_t bs = pool_->block_size();
  const std::int64_t slack = reserved_rows() - position_;
  const bool shared_tail =
      position_ % bs != 0 &&
      pool_->ref_count(block_table_[static_cast<std::size_t>(position_ / bs)]) > 1;
  std::int64_t avail = pool_->available_blocks();
  std::int64_t pool_left;
  if (shared_tail) {
    pool_left = avail >= 1 ? slack + (avail - 1) * bs : 0;
  } else {
    pool_left = slack + avail * bs;
  }
  return std::min(seq_left, pool_left);
}

std::int64_t KvCache::BlocksNeededFor(std::int64_t tokens) const {
  if (!paged() || tokens <= 0) {
    return 0;
  }
  const std::int64_t bs = pool_->block_size();
  const std::int64_t needed_entries = (position_ + tokens + bs - 1) / bs;
  std::int64_t need =
      std::max<std::int64_t>(0, needed_entries - static_cast<std::int64_t>(block_table_.size()));
  const bool shared_tail =
      position_ % bs != 0 &&
      pool_->ref_count(block_table_[static_cast<std::size_t>(position_ / bs)]) > 1;
  if (shared_tail) {
    ++need;  // copy-on-write of the tail block comes first
  }
  return need;
}

Status KvCache::PrepareAppend(std::int64_t tokens) {
  KTX_CHECK_GE(tokens, 0);
  if (tokens == 0) {
    return OkStatus();
  }
  if (has_capacity_bound() && position_ + tokens > max_seq_) {
    return ResourceExhaustedError("kv cache exhausted: position " + std::to_string(position_) +
                                  " + " + std::to_string(tokens) + " exceeds max_seq " +
                                  std::to_string(max_seq_));
  }
  if (!paged()) {
    return OkStatus();
  }
  const std::int64_t bs = pool_->block_size();
  // Copy-on-write: the tail block is partially ours but shared with another
  // session (or the prefix cache); appending in place would corrupt them.
  const std::int64_t filled = position_ % bs;
  if (filled != 0) {
    const std::size_t tb = static_cast<std::size_t>(position_ / bs);
    if (pool_->ref_count(block_table_[tb]) > 1) {
      auto fresh = pool_->AllocBlock();
      if (!fresh.ok()) {
        return fresh.status().WithContext("copy-on-write of shared kv tail block");
      }
      pool_->CopyBlockRows(block_table_[tb], *fresh, filled);
      pool_->Unref(block_table_[tb]);
      block_table_[tb] = *fresh;
      ++pool_->cow_copies_;
    }
  }
  const std::int64_t needed_entries = (position_ + tokens + bs - 1) / bs;
  while (static_cast<std::int64_t>(block_table_.size()) < needed_entries) {
    auto block = pool_->AllocBlock();
    if (!block.ok()) {
      // Blocks already allocated this call stay reserved in the table; they
      // are reclaimed on Reset, and the position is untouched.
      return block.status().WithContext("kv append of " + std::to_string(tokens) +
                                        " tokens at position " + std::to_string(position_));
    }
    block_table_.push_back(*block);
  }
  return OkStatus();
}

Status KvCache::TryAdvance(std::int64_t tokens) {
  if (has_capacity_bound() && tokens > remaining()) {
    return ResourceExhaustedError("kv cache exhausted: position " + std::to_string(position_) +
                                  " + " + std::to_string(tokens) + " exceeds max_seq " +
                                  std::to_string(max_seq_) +
                                  (paged() ? " or pool capacity" : ""));
  }
  KTX_RETURN_IF_ERROR(PrepareAppend(tokens));
  position_ += tokens;
  return OkStatus();
}

void KvCache::AdoptPrefix(const std::vector<std::int32_t>& blocks, std::int64_t tokens) {
  KTX_CHECK(paged()) << "AdoptPrefix on a contiguous KvCache";
  KTX_CHECK(position_ == 0 && block_table_.empty())
      << "AdoptPrefix requires an empty cache";
  KTX_CHECK_EQ(tokens, static_cast<std::int64_t>(blocks.size()) * pool_->block_size())
      << "only whole blocks are shareable";
  KTX_CHECK_LE(tokens, max_seq_);
  for (std::int32_t block : blocks) {
    pool_->Ref(block);
    block_table_.push_back(block);
  }
  position_ = tokens;
}

Status KvCache::CloneFrom(const KvCache& parent) {
  if (position_ != 0 || !block_table_.empty()) {
    return FailedPreconditionError("CloneFrom requires an empty cache");
  }
  if (paged() != parent.paged() || (paged() && pool_ != parent.pool_)) {
    return FailedPreconditionError("CloneFrom requires matching storage (same mode and pool)");
  }
  if (paged()) {
    // Share every block covering [0, position): ref bumps only. The partial
    // tail (if any) is now shared; the first divergent append copy-on-writes.
    const std::int64_t bs = pool_->block_size();
    const std::int64_t used = (parent.position_ + bs - 1) / bs;
    for (std::int64_t b = 0; b < used; ++b) {
      const std::int32_t block = parent.block_table_[static_cast<std::size_t>(b)];
      pool_->Ref(block);
      block_table_.push_back(block);
    }
  } else {
    if (layers_.size() != parent.layers_.size() || max_seq_ != parent.max_seq_ ||
        kv_dim_ != parent.kv_dim_ || lora_ != parent.lora_ || rope_ != parent.rope_) {
      return FailedPreconditionError("CloneFrom requires matching cache geometry");
    }
    auto copy_rows = [&](const Tensor& src, Tensor& dst) {
      if (src.numel() == 0) {
        return;
      }
      const std::int64_t dim = src.dim(1);
      std::memcpy(dst.f32(), src.f32(),
                  static_cast<std::size_t>(parent.position_ * dim) * sizeof(float));
    };
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      copy_rows(parent.layers_[l].k, layers_[l].k);
      copy_rows(parent.layers_[l].v, layers_[l].v);
      copy_rows(parent.layers_[l].ckv, layers_[l].ckv);
      copy_rows(parent.layers_[l].k_rope, layers_[l].k_rope);
    }
  }
  position_ = parent.position_;
  return OkStatus();
}

void KvCache::ReleaseBlocks() {
  if (pool_ != nullptr) {
    for (std::int32_t block : block_table_) {
      pool_->Unref(block);
    }
  }
  block_table_.clear();
}

}  // namespace ktx
