#include "src/model/kv_cache.h"

namespace ktx {

KvCache::KvCache(const MoeModelConfig& config) {
  layers_.resize(static_cast<std::size_t>(config.num_layers));
  for (auto& layer : layers_) {
    if (config.attention == AttentionKind::kMla) {
      layer.ckv = Tensor({config.max_seq, config.kv_lora_rank}, DType::kF32);
      layer.k_rope = Tensor({config.max_seq, config.rope_dim}, DType::kF32);
      bytes_per_position_ +=
          static_cast<std::size_t>(config.kv_lora_rank + config.rope_dim) * sizeof(float);
    } else {
      const std::int64_t kv_dim = config.num_kv_heads * config.head_dim;
      layer.k = Tensor({config.max_seq, kv_dim}, DType::kF32);
      layer.v = Tensor({config.max_seq, kv_dim}, DType::kF32);
      bytes_per_position_ += 2 * static_cast<std::size_t>(kv_dim) * sizeof(float);
    }
  }
}

}  // namespace ktx
