#include "src/model/kv_cache.h"

#include <string>

namespace ktx {

KvCache::KvCache(const MoeModelConfig& config) : max_seq_(config.max_seq) {
  layers_.resize(static_cast<std::size_t>(config.num_layers));
  for (auto& layer : layers_) {
    if (config.attention == AttentionKind::kMla) {
      layer.ckv = Tensor({config.max_seq, config.kv_lora_rank}, DType::kF32);
      layer.k_rope = Tensor({config.max_seq, config.rope_dim}, DType::kF32);
      bytes_per_position_ +=
          static_cast<std::size_t>(config.kv_lora_rank + config.rope_dim) * sizeof(float);
    } else {
      const std::int64_t kv_dim = config.num_kv_heads * config.head_dim;
      layer.k = Tensor({config.max_seq, kv_dim}, DType::kF32);
      layer.v = Tensor({config.max_seq, kv_dim}, DType::kF32);
      bytes_per_position_ += 2 * static_cast<std::size_t>(kv_dim) * sizeof(float);
    }
  }
}

Status KvCache::TryAdvance(std::int64_t tokens) {
  if (!CanAdvance(tokens)) {
    return ResourceExhaustedError("kv cache exhausted: position " +
                                  std::to_string(position_) + " + " + std::to_string(tokens) +
                                  " exceeds max_seq " + std::to_string(max_seq_));
  }
  position_ += tokens;
  return OkStatus();
}

}  // namespace ktx
