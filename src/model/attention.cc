#include "src/model/attention.h"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <functional>
#include <vector>

#include "src/common/logging.h"
#include "src/cpu/activation.h"
#include "src/cpu/gemm.h"

namespace ktx {

namespace {

// Per-dimension inverse-frequency table: pow() is far more expensive than the
// rotation itself, and the frequencies depend only on (i, dim), so they are
// computed once per head size and shared across layers and positions.
const std::vector<double>& RopeFrequencies(std::int64_t dim) {
  static std::mutex mu;
  static std::map<std::int64_t, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(dim);
  if (it == cache.end()) {
    std::vector<double> freqs;
    for (std::int64_t i = 0; i + 1 < dim; i += 2) {
      freqs.push_back(std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(dim)));
    }
    it = cache.emplace(dim, std::move(freqs)).first;
  }
  return it->second;
}

}  // namespace

void ApplyRope(float* vec, std::int64_t dim, std::int64_t pos) {
  const std::vector<double>& freqs = RopeFrequencies(dim);
  for (std::int64_t i = 0; i + 1 < dim; i += 2) {
    const double angle = static_cast<double>(pos) * freqs[static_cast<std::size_t>(i / 2)];
    const float c = static_cast<float>(std::cos(angle));
    const float s = static_cast<float>(std::sin(angle));
    const float a = vec[i];
    const float b = vec[i + 1];
    vec[i] = a * c - b * s;
    vec[i + 1] = a * s + b * c;
  }
}

namespace {

// Softmax-weighted sum over scores[0..len) and values val(j) -> out.
void AttendRow(const std::vector<float>& scores, std::int64_t len,
               const std::function<const float*(std::int64_t)>& value_at, std::int64_t v_dim,
               float* out) {
  float max_s = -1e30f;
  for (std::int64_t j = 0; j < len; ++j) {
    max_s = std::max(max_s, scores[static_cast<std::size_t>(j)]);
  }
  float denom = 0.0f;
  std::memset(out, 0, static_cast<std::size_t>(v_dim) * sizeof(float));
  for (std::int64_t j = 0; j < len; ++j) {
    const float w = std::exp(scores[static_cast<std::size_t>(j)] - max_s);
    denom += w;
    const float* v = value_at(j);
    for (std::int64_t d = 0; d < v_dim; ++d) {
      out[d] += w * v[d];
    }
  }
  const float inv = 1.0f / denom;
  for (std::int64_t d = 0; d < v_dim; ++d) {
    out[d] *= inv;
  }
}

void GqaForward(const MoeModelConfig& config, const AttentionWeights& w, const float* x,
                std::int64_t m, std::int64_t pos0, const KvLayerView& cache, float* out) {
  const std::int64_t hidden = config.hidden;
  const std::int64_t hd = config.head_dim;
  const int heads = config.num_heads;
  const int kv_heads = config.num_kv_heads;
  const int group = heads / kv_heads;
  const std::int64_t q_dim = heads * hd;
  const std::int64_t kv_dim = kv_heads * hd;

  std::vector<float> q(static_cast<std::size_t>(m * q_dim));
  RefGemm(x, m, hidden, w.wq, q.data(), q_dim);
  // Append new K/V to the cache, with RoPE on K.
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t pos = pos0 + i;
    float* krow = cache.k_row(pos);
    float* vrow = cache.v_row(pos);
    RefGemm(x + i * hidden, 1, hidden, w.wk, krow, kv_dim);
    RefGemm(x + i * hidden, 1, hidden, w.wv, vrow, kv_dim);
    for (int h = 0; h < kv_heads; ++h) {
      ApplyRope(krow + h * hd, hd, pos);
    }
    for (int h = 0; h < heads; ++h) {
      ApplyRope(q.data() + i * q_dim + h * hd, hd, pos);
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> attn_out(static_cast<std::size_t>(m * q_dim));
  std::vector<float> scores;
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t len = pos0 + i + 1;  // causal window
    scores.resize(static_cast<std::size_t>(len));
    for (int h = 0; h < heads; ++h) {
      const int kvh = h / group;
      const float* qh = q.data() + i * q_dim + h * hd;
      for (std::int64_t j = 0; j < len; ++j) {
        const float* kj = cache.k_row(j) + kvh * hd;
        float dot = 0.0f;
        for (std::int64_t d = 0; d < hd; ++d) {
          dot += qh[d] * kj[d];
        }
        scores[static_cast<std::size_t>(j)] = dot * scale;
      }
      AttendRow(
          scores, len,
          [&](std::int64_t j) { return cache.v_row(j) + kvh * hd; }, hd,
          attn_out.data() + i * q_dim + h * hd);
    }
  }
  RefGemm(attn_out.data(), m, q_dim, w.wo, out, hidden);
}

void MlaForward(const MoeModelConfig& config, const AttentionWeights& w, const float* x,
                std::int64_t m, std::int64_t pos0, const KvLayerView& cache, float* out) {
  const std::int64_t hidden = config.hidden;
  const std::int64_t nope = config.head_dim;
  const std::int64_t rope = config.rope_dim;
  const std::int64_t vd = config.v_head_dim;
  const std::int64_t lora = config.kv_lora_rank;
  const int heads = config.num_heads;
  const std::int64_t qk_head = nope + rope;
  const std::int64_t q_dim = heads * qk_head;

  // Query path: optional low-rank compression, then up-projection.
  std::vector<float> q(static_cast<std::size_t>(m * q_dim));
  if (config.q_lora_rank > 0) {
    std::vector<float> cq(static_cast<std::size_t>(m * config.q_lora_rank));
    RefGemm(x, m, hidden, w.w_dq, cq.data(), config.q_lora_rank);
    RefGemm(cq.data(), m, config.q_lora_rank, w.w_uq, q.data(), q_dim);
  } else {
    RefGemm(x, m, hidden, w.w_uq, q.data(), q_dim);
  }

  // Joint KV compression: [kv_lora | rope] per new position, appended to
  // cache; RoPE on the decoupled key part and on each query's rope part.
  std::vector<float> dkv(static_cast<std::size_t>(lora + rope));
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t pos = pos0 + i;
    RefGemm(x + i * hidden, 1, hidden, w.w_dkv, dkv.data(), lora + rope);
    std::memcpy(cache.ckv_row(pos), dkv.data(), static_cast<std::size_t>(lora) * sizeof(float));
    float* krope = cache.k_rope_row(pos);
    std::memcpy(krope, dkv.data() + lora, static_cast<std::size_t>(rope) * sizeof(float));
    ApplyRope(krope, rope, pos);
    for (int h = 0; h < heads; ++h) {
      ApplyRope(q.data() + i * q_dim + h * qk_head + nope, rope, pos);
    }
  }

  // Materialize per-position K(nope)/V from the latent for the whole window.
  // Each GEMM row depends only on its own latent row, so running the GEMM per
  // physically-contiguous run (whole window when contiguous, per block when
  // paged) is bit-identical to one whole-window GEMM.
  const std::int64_t window = pos0 + m;
  std::vector<float> k_nope(static_cast<std::size_t>(window * heads * nope));
  std::vector<float> v_all(static_cast<std::size_t>(window * heads * vd));
  for (std::int64_t p = 0; p < window;) {
    const std::int64_t run = cache.run_length(p, window);
    RefGemm(cache.ckv_row(p), run, lora, w.w_uk, k_nope.data() + p * heads * nope, heads * nope);
    RefGemm(cache.ckv_row(p), run, lora, w.w_uv, v_all.data() + p * heads * vd, heads * vd);
    p += run;
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(qk_head));
  std::vector<float> attn_out(static_cast<std::size_t>(m * heads * vd));
  std::vector<float> scores;
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t len = pos0 + i + 1;
    scores.resize(static_cast<std::size_t>(len));
    for (int h = 0; h < heads; ++h) {
      const float* qh = q.data() + i * q_dim + h * qk_head;
      for (std::int64_t j = 0; j < len; ++j) {
        const float* kj = k_nope.data() + (j * heads + h) * nope;
        const float* krope = cache.k_rope_row(j);
        float dot = 0.0f;
        for (std::int64_t d = 0; d < nope; ++d) {
          dot += qh[d] * kj[d];
        }
        for (std::int64_t d = 0; d < rope; ++d) {
          dot += qh[nope + d] * krope[d];
        }
        scores[static_cast<std::size_t>(j)] = dot * scale;
      }
      AttendRow(
          scores, len,
          [&](std::int64_t j) { return v_all.data() + (j * heads + h) * vd; }, vd,
          attn_out.data() + (i * heads + h) * vd);
    }
  }
  RefGemm(attn_out.data(), m, heads * vd, w.wo, out, hidden);
}

}  // namespace

Status AttentionForward(const MoeModelConfig& config, const AttentionWeights& w, const float* x,
                        std::int64_t m, std::int64_t pos0, const KvLayerView& cache, float* out) {
  if (pos0 + m > config.max_seq || pos0 + m > cache.capacity_rows()) {
    return ResourceExhaustedError(
        "KV cache overflow: positions [" + std::to_string(pos0) + ", " +
        std::to_string(pos0 + m) + ") exceed max_seq " + std::to_string(config.max_seq) +
        " or prepared rows " + std::to_string(cache.capacity_rows()));
  }
  if (config.attention == AttentionKind::kMla) {
    MlaForward(config, w, x, m, pos0, cache, out);
  } else {
    GqaForward(config, w, x, m, pos0, cache, out);
  }
  return OkStatus();
}

Status AttentionDecodeBatch(const MoeModelConfig& config, const AttentionWeights& w,
                            const float* x, std::int64_t rows, const std::int64_t* positions,
                            KvCache* const* caches, int layer, float* out) {
  for (std::int64_t r = 0; r < rows; ++r) {
    KTX_RETURN_IF_ERROR(AttentionForward(config, w, x + r * config.hidden, /*m=*/1, positions[r],
                                         caches[r]->layer(layer), out + r * config.hidden)
                            .WithContext("decode batch row " + std::to_string(r)));
  }
  return OkStatus();
}

AttentionCost EstimateAttentionCost(const MoeModelConfig& config, std::int64_t m,
                                    std::int64_t seq, double bytes_per_weight) {
  AttentionCost cost;
  const double md = static_cast<double>(m);
  const double sd = static_cast<double>(seq);
  const double h = static_cast<double>(config.hidden);
  if (config.attention == AttentionKind::kMla) {
    const double heads = config.num_heads;
    const double qk = static_cast<double>(config.head_dim + config.rope_dim);
    // Projections (with matrix absorption the score/value paths run in the
    // 512-dim latent space on decode; flops below follow the absorbed form).
    double proj_params = h * config.q_lora_rank + config.q_lora_rank * heads * qk +
                         h * (config.kv_lora_rank + config.rope_dim) +
                         config.kv_lora_rank * heads * (config.head_dim + config.v_head_dim) +
                         heads * config.v_head_dim * h;
    cost.flops += 2.0 * md * proj_params;
    // Scores + weighted values against the latent cache.
    cost.flops += 2.0 * md * sd * heads *
                  (static_cast<double>(config.kv_lora_rank) + config.rope_dim);
    cost.bytes += proj_params * bytes_per_weight;
    cost.bytes += sd * (config.kv_lora_rank + config.rope_dim) * 2.0;  // bf16 cache
  } else {
    const double q_dim = static_cast<double>(config.num_heads) * config.head_dim;
    const double kv_dim = static_cast<double>(config.num_kv_heads) * config.head_dim;
    const double proj_params = h * q_dim + 2.0 * h * kv_dim + q_dim * h;
    cost.flops += 2.0 * md * proj_params;
    cost.flops += 2.0 * md * sd * q_dim * 2.0;  // scores + values
    cost.bytes += proj_params * bytes_per_weight;
    cost.bytes += sd * kv_dim * 2.0 * 2.0;
  }
  return cost;
}

}  // namespace ktx
