// Expert routing (paper §2.1).
//
// Two gating flavours cover the evaluated models:
//   * kSoftmaxTopK (DeepSeek-V2, Qwen2): softmax over router logits, top-k
//     experts, weights renormalized over the selected set;
//   * kGroupedSigmoidTopK (DeepSeek-V3): sigmoid scores, experts organized in
//     n_group groups, only the topk_group best groups (by sum of their top-2
//     scores) stay eligible, then top-k within the survivors; weights are the
//     selected scores renormalized and scaled by routed_scaling.
//
// Routing slots come out sorted by descending score. Expert Deferral (§4.1)
// relies on this order: the immediate experts are the highest-scored slots.

#ifndef KTX_SRC_MODEL_GATING_H_
#define KTX_SRC_MODEL_GATING_H_

#include "src/cpu/moe_cpu.h"
#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace ktx {

// Computes routing for `tokens` rows of x (f32, [tokens, hidden]).
// `router` is [num_experts, hidden]; `bias` is [num_experts] (grouped gating
// selection bias; pass an empty tensor when unused).
MoeRouting ComputeRouting(const MoeModelConfig& config, const Tensor& router,
                          const Tensor& bias, const float* x, std::int64_t tokens);

}  // namespace ktx

#endif  // KTX_SRC_MODEL_GATING_H_
