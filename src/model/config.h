// MoE model configurations.
//
// Paper-true presets (Table 1) carry the real DeepSeek-V3 / DeepSeek-V2.5 /
// Qwen2-57B-A14B shapes — these feed the cost model and the parameter-count
// derivations. Tiny presets shrink every dimension so the functional engine,
// tests and accuracy experiments run in seconds on one core while exercising
// the identical code paths (grouped gating, MLA, shared experts, deferral).

#ifndef KTX_SRC_MODEL_CONFIG_H_
#define KTX_SRC_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace ktx {

enum class AttentionKind {
  kGqa,  // grouped-query attention (Qwen2-style)
  kMla,  // multi-head latent attention (DeepSeek-style)
};

enum class GatingKind {
  kSoftmaxTopK,        // DeepSeek-V2 / Qwen2: softmax scores, top-k
  kGroupedSigmoidTopK, // DeepSeek-V3: sigmoid scores, group-limited top-k
};

struct MoeModelConfig {
  std::string name;

  // Core dims.
  std::int64_t hidden = 0;
  std::int64_t vocab = 0;
  int num_layers = 0;          // total transformer layers
  int first_dense_layers = 0;  // leading layers use a dense FFN instead of MoE
  std::int64_t dense_inter = 0;

  // MoE.
  int num_experts = 0;  // routed experts per layer
  int top_k = 0;
  std::int64_t moe_inter = 0;          // routed-expert intermediate size
  int n_shared_experts = 0;            // shared experts (always active)
  GatingKind gating = GatingKind::kSoftmaxTopK;
  int n_group = 1;      // expert groups for grouped gating
  int topk_group = 1;   // groups kept by grouped gating
  float routed_scaling = 1.0f;

  // Attention.
  AttentionKind attention = AttentionKind::kGqa;
  int num_heads = 0;
  int num_kv_heads = 0;        // GQA only
  std::int64_t head_dim = 0;   // per-head dim (MLA: nope part)
  std::int64_t kv_lora_rank = 0;  // MLA latent dim
  std::int64_t q_lora_rank = 0;   // MLA query compression (0 = direct)
  std::int64_t rope_dim = 0;      // MLA decoupled RoPE dim
  std::int64_t v_head_dim = 0;    // MLA value head dim

  std::int64_t max_seq = 4096;

  int num_moe_layers() const { return num_layers - first_dense_layers; }
  bool is_moe_layer(int layer) const { return layer >= first_dense_layers; }
  std::int64_t shared_inter() const { return n_shared_experts * moe_inter; }

  // --- Parameter-count derivation (Table 1) ---------------------------------
  double RoutedExpertParams() const;   // "CPU parameters"
  double AttentionParams() const;      // per model, all layers
  double SharedAndDenseParams() const;
  double EmbeddingParams() const;
  double GpuParams() const;            // everything except routed experts
  double TotalParams() const;

  // Per-token decode working set on the CPU side (bytes of routed expert
  // weights touched), given a weight dtype byte width.
  double CpuBytesPerToken(double bytes_per_weight) const;
};

// Paper-true shapes (Table 1 and the public model configs).
MoeModelConfig DeepSeekV3Config();   // DS-3: 671B, 256 experts, top-8, MLA
MoeModelConfig DeepSeekV2Config();   // DS-2: 236B, 160 experts, top-6, MLA
MoeModelConfig Qwen2MoeConfig();     // QW-2: 57B,  64 experts, top-8, GQA

// Functional-scale presets.
MoeModelConfig TinyMoeConfig();      // unit tests: hidden 64
MoeModelConfig TinyMlaConfig();      // unit tests with MLA + grouped gating
MoeModelConfig SmallMoeConfig();     // accuracy benches: hidden 128, 8 layers

}  // namespace ktx

#endif  // KTX_SRC_MODEL_CONFIG_H_
