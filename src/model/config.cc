#include "src/model/config.h"

namespace ktx {

namespace {

double Per(double v) { return v; }

}  // namespace

double MoeModelConfig::RoutedExpertParams() const {
  // Three projections (gate/up/down) per expert, each hidden x moe_inter.
  return Per(3.0 * static_cast<double>(hidden) * static_cast<double>(moe_inter)) *
         num_experts * num_moe_layers();
}

double MoeModelConfig::AttentionParams() const {
  double per_layer = 0.0;
  if (attention == AttentionKind::kMla) {
    const double qk_head = static_cast<double>(head_dim + rope_dim);
    // Query path: optional low-rank compression then per-head up-projection.
    if (q_lora_rank > 0) {
      per_layer += static_cast<double>(hidden) * q_lora_rank;
      per_layer += static_cast<double>(q_lora_rank) * num_heads * qk_head;
    } else {
      per_layer += static_cast<double>(hidden) * num_heads * qk_head;
    }
    // KV path: joint latent compression + decoupled rope key.
    per_layer += static_cast<double>(hidden) * (kv_lora_rank + rope_dim);
    // Latent up-projections to per-head keys (nope) and values.
    per_layer += static_cast<double>(kv_lora_rank) * num_heads * (head_dim + v_head_dim);
    // Output projection.
    per_layer += static_cast<double>(num_heads) * v_head_dim * hidden;
  } else {
    per_layer += static_cast<double>(hidden) * num_heads * head_dim;          // q
    per_layer += 2.0 * static_cast<double>(hidden) * num_kv_heads * head_dim; // k, v
    per_layer += static_cast<double>(num_heads) * head_dim * hidden;          // o
  }
  return per_layer * num_layers;
}

double MoeModelConfig::SharedAndDenseParams() const {
  const double shared =
      3.0 * static_cast<double>(hidden) * shared_inter() * num_moe_layers();
  const double dense = 3.0 * static_cast<double>(hidden) * dense_inter * first_dense_layers;
  // Router weights are tiny but real.
  const double router = static_cast<double>(hidden) * num_experts * num_moe_layers();
  return shared + dense + router;
}

double MoeModelConfig::EmbeddingParams() const {
  return 2.0 * static_cast<double>(vocab) * hidden;  // embedding + lm_head
}

double MoeModelConfig::GpuParams() const {
  return AttentionParams() + SharedAndDenseParams() + EmbeddingParams();
}

double MoeModelConfig::TotalParams() const { return GpuParams() + RoutedExpertParams(); }

double MoeModelConfig::CpuBytesPerToken(double bytes_per_weight) const {
  return 3.0 * static_cast<double>(hidden) * moe_inter * top_k * num_moe_layers() *
         bytes_per_weight;
}

MoeModelConfig DeepSeekV3Config() {
  MoeModelConfig c;
  c.name = "DeepSeek-V3-0324";
  c.hidden = 7168;
  c.vocab = 129280;
  c.num_layers = 61;
  c.first_dense_layers = 3;
  c.dense_inter = 18432;
  c.num_experts = 256;
  c.top_k = 8;
  c.moe_inter = 2048;
  c.n_shared_experts = 1;
  c.gating = GatingKind::kGroupedSigmoidTopK;
  c.n_group = 8;
  c.topk_group = 4;
  c.routed_scaling = 2.5f;
  c.attention = AttentionKind::kMla;
  c.num_heads = 128;
  c.head_dim = 128;     // qk nope dim
  c.kv_lora_rank = 512;
  c.q_lora_rank = 1536;
  c.rope_dim = 64;
  c.v_head_dim = 128;
  c.max_seq = 8192;
  return c;
}

MoeModelConfig DeepSeekV2Config() {
  MoeModelConfig c;
  c.name = "DeepSeek-V2.5-1210";
  c.hidden = 5120;
  c.vocab = 102400;
  c.num_layers = 60;
  c.first_dense_layers = 1;
  c.dense_inter = 12288;
  c.num_experts = 160;
  c.top_k = 6;
  c.moe_inter = 1536;
  c.n_shared_experts = 2;
  c.gating = GatingKind::kSoftmaxTopK;
  c.routed_scaling = 16.0f;
  c.attention = AttentionKind::kMla;
  c.num_heads = 128;
  c.head_dim = 128;
  c.kv_lora_rank = 512;
  c.q_lora_rank = 1536;
  c.rope_dim = 64;
  c.v_head_dim = 128;
  c.max_seq = 8192;
  return c;
}

MoeModelConfig Qwen2MoeConfig() {
  MoeModelConfig c;
  c.name = "Qwen2-57B-A14B";
  c.hidden = 3584;
  c.vocab = 151936;
  c.num_layers = 28;
  c.first_dense_layers = 0;
  c.dense_inter = 0;
  c.num_experts = 64;
  c.top_k = 8;
  c.moe_inter = 2560;
  // Qwen2's shared expert has intermediate 20480 = 8 x 2560; model it as 8
  // shared expert units so shared_inter() matches.
  c.n_shared_experts = 8;
  c.gating = GatingKind::kSoftmaxTopK;
  c.attention = AttentionKind::kGqa;
  c.num_heads = 28;
  c.num_kv_heads = 4;
  c.head_dim = 128;
  c.max_seq = 8192;
  return c;
}

MoeModelConfig TinyMoeConfig() {
  MoeModelConfig c;
  c.name = "tiny-moe";
  c.hidden = 64;
  c.vocab = 256;
  c.num_layers = 3;
  c.first_dense_layers = 1;
  c.dense_inter = 96;
  c.num_experts = 8;
  c.top_k = 3;
  c.moe_inter = 64;
  c.n_shared_experts = 1;
  c.gating = GatingKind::kSoftmaxTopK;
  c.attention = AttentionKind::kGqa;
  c.num_heads = 4;
  c.num_kv_heads = 2;
  c.head_dim = 16;
  c.max_seq = 128;
  return c;
}

MoeModelConfig TinyMlaConfig() {
  MoeModelConfig c;
  c.name = "tiny-mla";
  c.hidden = 64;
  c.vocab = 256;
  c.num_layers = 3;
  c.first_dense_layers = 1;
  c.dense_inter = 96;
  c.num_experts = 16;
  c.top_k = 4;
  c.moe_inter = 64;
  c.n_shared_experts = 1;
  c.gating = GatingKind::kGroupedSigmoidTopK;
  c.n_group = 4;
  c.topk_group = 2;
  c.routed_scaling = 1.0f;
  c.attention = AttentionKind::kMla;
  c.num_heads = 4;
  c.head_dim = 16;
  c.kv_lora_rank = 32;
  c.q_lora_rank = 48;
  c.rope_dim = 8;
  c.v_head_dim = 16;
  c.max_seq = 128;
  return c;
}

MoeModelConfig SmallMoeConfig() {
  MoeModelConfig c;
  c.name = "small-moe";
  c.hidden = 128;
  c.vocab = 512;
  c.num_layers = 8;
  c.first_dense_layers = 1;
  c.dense_inter = 256;
  c.num_experts = 16;
  c.top_k = 8;  // matches DS-3's top-8 so deferral splits are comparable
  c.moe_inter = 96;
  c.n_shared_experts = 1;
  c.gating = GatingKind::kSoftmaxTopK;
  c.attention = AttentionKind::kGqa;
  c.num_heads = 8;
  c.num_kv_heads = 4;
  c.head_dim = 16;
  c.max_seq = 512;
  return c;
}

}  // namespace ktx
