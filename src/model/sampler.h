// Token sampling: greedy, temperature, top-k and nucleus (top-p).
//
// The paper's accuracy runs use greedy decoding and t=0.3 sampling
// (HumanEval/LiveBench, §6.1); this module provides both, deterministically
// seeded.

#ifndef KTX_SRC_MODEL_SAMPLER_H_
#define KTX_SRC_MODEL_SAMPLER_H_

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct SamplerOptions {
  float temperature = 0.0f;  // 0 = greedy
  int top_k = 0;             // 0 = unrestricted
  float top_p = 1.0f;        // nucleus mass; 1 = unrestricted
  std::uint64_t seed = 1;
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options) : options_(options), rng_(options.seed) {}

  // Samples from the last row of a [tokens, vocab] logits tensor.
  int Sample(const Tensor& logits);

  const SamplerOptions& options() const { return options_; }

 private:
  SamplerOptions options_;
  Rng rng_;
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_SAMPLER_H_
