#include "src/model/serialize.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "src/common/logging.h"

namespace ktx {

namespace {

constexpr char kMagic[4] = {'K', 'T', 'X', 'C'};
constexpr std::uint32_t kVersion = 1;

// --- little-endian primitives ---------------------------------------------------

void PutBytes(std::string* out, const void* data, std::size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void Put(std::string* out, T value) {
  PutBytes(out, &value, sizeof(T));
}

void PutString(std::string* out, const std::string& s) {
  Put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}

struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  Status Read(void* dst, std::size_t n) {
    if (pos + n > buf.size()) {
      return OutOfRangeError("truncated checkpoint (needed " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos) + ")");
    }
    std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return OkStatus();
  }

  Status Skip(std::size_t n) {
    if (pos + n > buf.size()) {
      return OutOfRangeError("truncated checkpoint (needed " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos) + ")");
    }
    pos += n;
    return OkStatus();
  }

  template <typename T>
  StatusOr<T> Get() {
    T value;
    KTX_RETURN_IF_ERROR(Read(&value, sizeof(T)));
    return value;
  }

  StatusOr<std::string> GetString(std::size_t max_len = 1 << 20) {
    KTX_ASSIGN_OR_RETURN(std::uint32_t len, Get<std::uint32_t>());
    if (len > max_len) {
      return OutOfRangeError("implausible string length " + std::to_string(len));
    }
    std::string s(len, '\0');
    KTX_RETURN_IF_ERROR(Read(s.data(), len));
    return s;
  }
};

// --- config block ----------------------------------------------------------------

void WriteConfig(std::string* out, const MoeModelConfig& c) {
  PutString(out, c.name);
  for (std::int64_t v : {c.hidden, c.vocab, static_cast<std::int64_t>(c.num_layers),
                         static_cast<std::int64_t>(c.first_dense_layers), c.dense_inter,
                         static_cast<std::int64_t>(c.num_experts),
                         static_cast<std::int64_t>(c.top_k), c.moe_inter,
                         static_cast<std::int64_t>(c.n_shared_experts),
                         static_cast<std::int64_t>(c.n_group),
                         static_cast<std::int64_t>(c.topk_group),
                         static_cast<std::int64_t>(c.num_heads),
                         static_cast<std::int64_t>(c.num_kv_heads), c.head_dim,
                         c.kv_lora_rank, c.q_lora_rank, c.rope_dim, c.v_head_dim, c.max_seq}) {
    Put<std::int64_t>(out, v);
  }
  Put<std::uint8_t>(out, static_cast<std::uint8_t>(c.gating));
  Put<std::uint8_t>(out, static_cast<std::uint8_t>(c.attention));
  Put<float>(out, c.routed_scaling);
}

StatusOr<MoeModelConfig> ReadConfig(Cursor* in) {
  MoeModelConfig c;
  KTX_ASSIGN_OR_RETURN(c.name, in->GetString());
  std::int64_t vals[19];
  for (std::int64_t& v : vals) {
    KTX_ASSIGN_OR_RETURN(v, in->Get<std::int64_t>());
  }
  c.hidden = vals[0];
  c.vocab = vals[1];
  c.num_layers = static_cast<int>(vals[2]);
  c.first_dense_layers = static_cast<int>(vals[3]);
  c.dense_inter = vals[4];
  c.num_experts = static_cast<int>(vals[5]);
  c.top_k = static_cast<int>(vals[6]);
  c.moe_inter = vals[7];
  c.n_shared_experts = static_cast<int>(vals[8]);
  c.n_group = static_cast<int>(vals[9]);
  c.topk_group = static_cast<int>(vals[10]);
  c.num_heads = static_cast<int>(vals[11]);
  c.num_kv_heads = static_cast<int>(vals[12]);
  c.head_dim = vals[13];
  c.kv_lora_rank = vals[14];
  c.q_lora_rank = vals[15];
  c.rope_dim = vals[16];
  c.v_head_dim = vals[17];
  c.max_seq = vals[18];
  KTX_ASSIGN_OR_RETURN(std::uint8_t gating, in->Get<std::uint8_t>());
  KTX_ASSIGN_OR_RETURN(std::uint8_t attention, in->Get<std::uint8_t>());
  if (gating > 1 || attention > 1) {
    return InvalidArgumentError("bad gating/attention tag");
  }
  c.gating = static_cast<GatingKind>(gating);
  c.attention = static_cast<AttentionKind>(attention);
  KTX_ASSIGN_OR_RETURN(c.routed_scaling, in->Get<float>());
  if (c.hidden <= 0 || c.vocab <= 0 || c.num_layers <= 0 || c.num_layers > 1 << 16 ||
      c.num_experts < 0 || c.num_experts > 1 << 20) {
    return InvalidArgumentError("implausible config values in checkpoint");
  }
  return c;
}

// --- canonical tensor enumeration -------------------------------------------------

// Visits every tensor the config implies, in a fixed order. The same walk
// drives both save and load, so the format cannot drift.
void VisitTensors(const MoeModelConfig& c, ModelWeights& w,
                  const std::function<void(const std::string&, Tensor&)>& fn) {
  fn("embedding", w.embedding);
  fn("final_norm", w.final_norm);
  fn("lm_head", w.lm_head);
  for (int l = 0; l < c.num_layers; ++l) {
    LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    const std::string p = "layers." + std::to_string(l) + ".";
    fn(p + "attn_norm", lw.attn_norm);
    fn(p + "ffn_norm", lw.ffn_norm);
    if (c.attention == AttentionKind::kMla) {
      if (c.q_lora_rank > 0) {
        fn(p + "attn.w_dq", lw.attn.w_dq);
      }
      fn(p + "attn.w_uq", lw.attn.w_uq);
      fn(p + "attn.w_dkv", lw.attn.w_dkv);
      fn(p + "attn.w_uk", lw.attn.w_uk);
      fn(p + "attn.w_uv", lw.attn.w_uv);
    } else {
      fn(p + "attn.wq", lw.attn.wq);
      fn(p + "attn.wk", lw.attn.wk);
      fn(p + "attn.wv", lw.attn.wv);
    }
    fn(p + "attn.wo", lw.attn.wo);
    if (!c.is_moe_layer(l)) {
      fn(p + "dense_gate", lw.dense_gate);
      fn(p + "dense_up", lw.dense_up);
      fn(p + "dense_down", lw.dense_down);
      continue;
    }
    fn(p + "router", lw.router);
    if (c.gating == GatingKind::kGroupedSigmoidTopK) {
      fn(p + "router_bias", lw.router_bias);
    }
    if (c.n_shared_experts > 0) {
      fn(p + "shared_gate", lw.shared_gate);
      fn(p + "shared_up", lw.shared_up);
      fn(p + "shared_down", lw.shared_down);
    }
    for (int e = 0; e < c.num_experts; ++e) {
      const std::string ep = p + "experts." + std::to_string(e) + ".";
      fn(ep + "gate", lw.expert_gate[static_cast<std::size_t>(e)]);
      fn(ep + "up", lw.expert_up[static_cast<std::size_t>(e)]);
      fn(ep + "down", lw.expert_down[static_cast<std::size_t>(e)]);
    }
  }
}

void WriteTensor(std::string* out, const std::string& name, const Tensor& t) {
  PutString(out, name);
  Put<std::uint8_t>(out, static_cast<std::uint8_t>(t.dtype()));
  Put<std::uint8_t>(out, static_cast<std::uint8_t>(t.rank()));
  for (std::int64_t d : t.shape()) {
    Put<std::int64_t>(out, d);
  }
  Put<std::uint64_t>(out, static_cast<std::uint64_t>(t.byte_size()));
  PutBytes(out, t.raw(), t.byte_size());
}

StatusOr<Tensor> ReadTensor(Cursor* in, std::string* name) {
  KTX_ASSIGN_OR_RETURN(*name, in->GetString());
  KTX_ASSIGN_OR_RETURN(std::uint8_t dtype_tag, in->Get<std::uint8_t>());
  if (dtype_tag > static_cast<std::uint8_t>(DType::kI32)) {
    return InvalidArgumentError("bad dtype tag for tensor " + *name);
  }
  KTX_ASSIGN_OR_RETURN(std::uint8_t rank, in->Get<std::uint8_t>());
  if (rank > 4) {
    return InvalidArgumentError("implausible rank for tensor " + *name);
  }
  std::vector<std::int64_t> shape;
  std::int64_t numel = 1;
  for (int i = 0; i < rank; ++i) {
    KTX_ASSIGN_OR_RETURN(std::int64_t d, in->Get<std::int64_t>());
    if (d < 0 || d > (1LL << 32)) {
      return InvalidArgumentError("implausible dimension for tensor " + *name);
    }
    shape.push_back(d);
    numel *= d;
  }
  KTX_ASSIGN_OR_RETURN(std::uint64_t payload, in->Get<std::uint64_t>());
  Tensor t(shape, static_cast<DType>(dtype_tag));
  if (payload != t.byte_size() || static_cast<std::int64_t>(t.numel()) != numel) {
    return InvalidArgumentError("payload size mismatch for tensor " + *name);
  }
  KTX_RETURN_IF_ERROR(in->Read(t.raw(), t.byte_size()));
  return t;
}

// Sizes the ModelWeights skeleton so VisitTensors has slots to fill.
ModelWeights MakeSkeleton(const MoeModelConfig& c) {
  ModelWeights w;
  w.layers.resize(static_cast<std::size_t>(c.num_layers));
  for (int l = c.first_dense_layers; l < c.num_layers; ++l) {
    LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    lw.expert_gate.resize(static_cast<std::size_t>(c.num_experts));
    lw.expert_up.resize(static_cast<std::size_t>(c.num_experts));
    lw.expert_down.resize(static_cast<std::size_t>(c.num_experts));
  }
  return w;
}

}  // namespace

std::string SerializeModel(const MoeModelConfig& config, const ModelWeights& weights) {
  std::string out;
  PutBytes(&out, kMagic, sizeof(kMagic));
  Put<std::uint32_t>(&out, kVersion);
  WriteConfig(&out, config);

  std::uint32_t count = 0;
  std::string body;
  // const_cast: VisitTensors takes mutable refs to serve the load path; the
  // save lambda only reads.
  VisitTensors(config, const_cast<ModelWeights&>(weights),
               [&](const std::string& name, Tensor& t) {
                 WriteTensor(&body, name, t);
                 ++count;
               });
  Put<std::uint32_t>(&out, count);
  out += body;
  return out;
}

StatusOr<ModelFile> DeserializeModel(const std::string& bytes) {
  Cursor in{bytes};
  char magic[4];
  KTX_RETURN_IF_ERROR(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("not a KTXC checkpoint (bad magic)");
  }
  KTX_ASSIGN_OR_RETURN(std::uint32_t version, in.Get<std::uint32_t>());
  if (version != kVersion) {
    return InvalidArgumentError("unsupported checkpoint version " + std::to_string(version));
  }
  ModelFile file;
  KTX_ASSIGN_OR_RETURN(file.config, ReadConfig(&in));
  KTX_ASSIGN_OR_RETURN(std::uint32_t count, in.Get<std::uint32_t>());

  file.weights = MakeSkeleton(file.config);
  // Expected names in canonical order.
  std::vector<std::pair<std::string, Tensor*>> slots;
  VisitTensors(file.config, file.weights, [&](const std::string& name, Tensor& t) {
    slots.emplace_back(name, &t);
  });
  if (count != slots.size()) {
    return InvalidArgumentError("tensor count mismatch: file has " + std::to_string(count) +
                                ", config implies " + std::to_string(slots.size()));
  }
  for (auto& [expected_name, slot] : slots) {
    std::string name;
    KTX_ASSIGN_OR_RETURN(Tensor t, ReadTensor(&in, &name));
    if (name != expected_name) {
      return InvalidArgumentError("tensor order mismatch: expected " + expected_name +
                                  ", found " + name);
    }
    *slot = std::move(t);
  }
  if (in.pos != bytes.size()) {
    return InvalidArgumentError("trailing garbage after checkpoint payload");
  }
  return file;
}

namespace {

constexpr char kKvMagic[4] = {'K', 'T', 'X', 'V'};
constexpr std::uint32_t kKvVersion = 1;

// Row dimensions per cached stream for the config's attention kind. Streams
// the kind does not use have dimension 0 and contribute no bytes.
struct KvDims {
  std::int64_t kv = 0;    // GQA k and v
  std::int64_t lora = 0;  // MLA ckv
  std::int64_t rope = 0;  // MLA k_rope
};

KvDims KvDimsFor(const MoeModelConfig& c) {
  KvDims d;
  if (c.attention == AttentionKind::kMla) {
    d.lora = c.kv_lora_rank;
    d.rope = c.rope_dim;
  } else {
    d.kv = c.num_kv_heads * c.head_dim;
  }
  return d;
}

}  // namespace

std::string SerializeKvState(const MoeModelConfig& config, const KvCache& cache) {
  std::string out;
  PutBytes(&out, kKvMagic, sizeof(kKvMagic));
  Put<std::uint32_t>(&out, kKvVersion);
  Put<std::uint8_t>(&out, static_cast<std::uint8_t>(config.attention));
  Put<std::int64_t>(&out, static_cast<std::int64_t>(config.num_layers));
  const KvDims dims = KvDimsFor(config);
  Put<std::int64_t>(&out, dims.kv);
  Put<std::int64_t>(&out, dims.lora);
  Put<std::int64_t>(&out, dims.rope);
  const std::int64_t position = cache.position();
  Put<std::int64_t>(&out, position);
  // Row-by-row gather through the view: the block-table indirection (if any)
  // dissolves here, making the bytes storage-agnostic.
  auto put_rows = [&](const KvLayerView& view, float* (KvLayerView::*row)(std::int64_t) const,
                      std::int64_t dim) {
    for (std::int64_t p = 0; p < position; ++p) {
      PutBytes(&out, (view.*row)(p), static_cast<std::size_t>(dim) * sizeof(float));
    }
  };
  for (int l = 0; l < config.num_layers; ++l) {
    const KvLayerView view = cache.layer(l);
    if (config.attention == AttentionKind::kMla) {
      put_rows(view, &KvLayerView::ckv_row, dims.lora);
      put_rows(view, &KvLayerView::k_rope_row, dims.rope);
    } else {
      put_rows(view, &KvLayerView::k_row, dims.kv);
      put_rows(view, &KvLayerView::v_row, dims.kv);
    }
  }
  return out;
}

Status DeserializeKvState(const std::string& bytes, const MoeModelConfig& config,
                          KvCache* cache, std::int64_t start_pos) {
  KTX_CHECK(cache != nullptr);
  if (start_pos < 0) {
    return InvalidArgumentError("kv-state restore start position " +
                                std::to_string(start_pos) + " is negative");
  }
  if (cache->position() != start_pos) {
    return FailedPreconditionError("kv-state restore expects the cache at position " +
                                   std::to_string(start_pos) + ", found " +
                                   std::to_string(cache->position()));
  }
  Cursor in{bytes};
  char magic[4];
  KTX_RETURN_IF_ERROR(in.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kKvMagic, sizeof(kKvMagic)) != 0) {
    return InvalidArgumentError("not a KTXV kv-state blob (bad magic)");
  }
  KTX_ASSIGN_OR_RETURN(std::uint32_t version, in.Get<std::uint32_t>());
  if (version != kKvVersion) {
    return InvalidArgumentError("unsupported kv-state version " + std::to_string(version));
  }
  KTX_ASSIGN_OR_RETURN(std::uint8_t attention, in.Get<std::uint8_t>());
  KTX_ASSIGN_OR_RETURN(std::int64_t num_layers, in.Get<std::int64_t>());
  const KvDims dims = KvDimsFor(config);
  std::int64_t file_dims[3];
  for (std::int64_t& d : file_dims) {
    KTX_ASSIGN_OR_RETURN(d, in.Get<std::int64_t>());
  }
  if (attention != static_cast<std::uint8_t>(config.attention) ||
      num_layers != config.num_layers || file_dims[0] != dims.kv ||
      file_dims[1] != dims.lora || file_dims[2] != dims.rope) {
    return InvalidArgumentError("kv-state geometry does not match the target config");
  }
  KTX_ASSIGN_OR_RETURN(std::int64_t position, in.Get<std::int64_t>());
  if (position < 0 || (cache->has_capacity_bound() && position > cache->max_seq())) {
    return InvalidArgumentError("kv-state position " + std::to_string(position) +
                                " does not fit the target cache");
  }
  if (start_pos > position) {
    return InvalidArgumentError("kv-state restore start position " +
                                std::to_string(start_pos) + " past the blob's position " +
                                std::to_string(position));
  }
  KTX_RETURN_IF_ERROR(cache->PrepareAppend(position - start_pos).WithContext("kv-state restore"));
  // Rows before start_pos are skipped, not rewritten: in the adoption path
  // they live in blocks shared with the prefix cache, which must never be
  // written through (the bytes there are the very ones that were serialized).
  auto get_rows = [&](const KvLayerView& view, float* (KvLayerView::*row)(std::int64_t) const,
                      std::int64_t dim) -> Status {
    const std::size_t row_bytes = static_cast<std::size_t>(dim) * sizeof(float);
    KTX_RETURN_IF_ERROR(in.Skip(static_cast<std::size_t>(start_pos) * row_bytes));
    for (std::int64_t p = start_pos; p < position; ++p) {
      KTX_RETURN_IF_ERROR(in.Read((view.*row)(p), row_bytes));
    }
    return OkStatus();
  };
  for (int l = 0; l < config.num_layers; ++l) {
    const KvLayerView view = cache->layer(l);
    if (config.attention == AttentionKind::kMla) {
      KTX_RETURN_IF_ERROR(get_rows(view, &KvLayerView::ckv_row, dims.lora));
      KTX_RETURN_IF_ERROR(get_rows(view, &KvLayerView::k_rope_row, dims.rope));
    } else {
      KTX_RETURN_IF_ERROR(get_rows(view, &KvLayerView::k_row, dims.kv));
      KTX_RETURN_IF_ERROR(get_rows(view, &KvLayerView::v_row, dims.kv));
    }
  }
  if (in.pos != bytes.size()) {
    return InvalidArgumentError("trailing garbage after kv-state payload");
  }
  cache->Advance(position - start_pos);
  return OkStatus();
}

Status SaveModel(const std::string& path, const MoeModelConfig& config,
                 const ModelWeights& weights) {
  const std::string bytes = SerializeModel(config, weights);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return InternalError("cannot open " + tmp + " for writing");
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return InternalError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename " + tmp + " to " + path);
  }
  return OkStatus();
}

StatusOr<ModelFile> LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  const bool ok = std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) {
    return InternalError("short read from " + path);
  }
  return DeserializeModel(bytes);
}

}  // namespace ktx
