#include "src/model/kv_block_pool.h"

#include <cstring>
#include <limits>
#include <string>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace ktx {

std::vector<std::uint64_t> HashTokenBlocks(const std::vector<int>& tokens,
                                           std::int64_t block_size) {
  KTX_CHECK_GE(block_size, 1);
  std::vector<std::uint64_t> hashes;
  const std::int64_t full_blocks =
      static_cast<std::int64_t>(tokens.size()) / block_size;
  hashes.reserve(static_cast<std::size_t>(full_blocks));
  // FNV-1a over the token stream, chained: each block's hash continues from
  // the previous block's, so hash i commits to every token before it.
  std::uint64_t h = 14695981039346656037ULL;
  for (std::int64_t b = 0; b < full_blocks; ++b) {
    for (std::int64_t i = 0; i < block_size; ++i) {
      std::uint64_t tok = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(tokens[static_cast<std::size_t>(b * block_size + i)]));
      for (int byte = 0; byte < 4; ++byte) {
        h ^= (tok >> (8 * byte)) & 0xffu;
        h *= 1099511628211ULL;
      }
    }
    hashes.push_back(h);
  }
  return hashes;
}

KvBlockPool::KvBlockPool(const MoeModelConfig& config, KvPoolOptions options)
    : config_(config), options_(options) {
  KTX_CHECK_GE(options_.block_size, 1);
  KTX_CHECK_GE(options_.num_blocks, 1);
  KTX_CHECK_LE(options_.num_blocks, std::numeric_limits<std::int32_t>::max());
  const std::int64_t rows = options_.num_blocks * options_.block_size;
  for (int l = 0; l < config_.num_layers; ++l) {
    if (config_.attention == AttentionKind::kMla) {
      mla_ckv_.push_back(Tensor({rows, config_.kv_lora_rank}, DType::kF32));
      mla_krope_.push_back(Tensor({rows, config_.rope_dim}, DType::kF32));
      bytes_per_position_ +=
          static_cast<std::size_t>(config_.kv_lora_rank + config_.rope_dim) * sizeof(float);
    } else {
      const std::int64_t kv_dim = config_.num_kv_heads * config_.head_dim;
      gqa_k_.push_back(Tensor({rows, kv_dim}, DType::kF32));
      gqa_v_.push_back(Tensor({rows, kv_dim}, DType::kF32));
      bytes_per_position_ += 2 * static_cast<std::size_t>(kv_dim) * sizeof(float);
    }
  }
  ref_counts_.assign(static_cast<std::size_t>(options_.num_blocks), 0);
  free_.reserve(static_cast<std::size_t>(options_.num_blocks));
  // LIFO free list: push in reverse so blocks hand out in ascending order,
  // which keeps tests and dumps readable.
  for (std::int64_t b = options_.num_blocks - 1; b >= 0; --b) {
    free_.push_back(static_cast<std::int32_t>(b));
  }
}

std::int64_t KvBlockPool::available_blocks() const {
  std::int64_t evictable = 0;
  for (const auto& [hash, entry] : prefix_cache_) {
    if (ref_counts_[static_cast<std::size_t>(entry.block)] == 1) {
      ++evictable;
    }
  }
  return free_blocks() + evictable;
}

KvBlockPool::Stats KvBlockPool::stats() const {
  Stats s;
  s.total_blocks = num_blocks();
  s.free_blocks = free_blocks();
  s.cached_blocks = static_cast<std::int64_t>(prefix_cache_.size());
  s.evictable_blocks = available_blocks() - free_blocks();
  s.blocks_in_use = blocks_in_use();
  s.cow_copies = cow_copies_;
  s.evictions = evictions_;
  s.prefix_lookups = prefix_lookups_;
  s.prefix_hits = prefix_hits_;
  return s;
}

bool KvBlockPool::EvictOne() {
  std::uint64_t best_recency = 0;
  std::uint64_t best_hash = 0;
  std::int32_t best_block = -1;
  for (const auto& [hash, entry] : prefix_cache_) {
    if (ref_counts_[static_cast<std::size_t>(entry.block)] != 1) {
      continue;  // a session still reads it; not evictable
    }
    if (best_block < 0 || entry.recency < best_recency) {
      best_recency = entry.recency;
      best_hash = hash;
      best_block = entry.block;
    }
  }
  if (best_block < 0) {
    return false;
  }
  prefix_cache_.erase(best_hash);
  block_hash_.erase(best_block);
  ++evictions_;
  KTX_TRACE_INSTANT_ARG("kv", "evict_block", "block", best_block);
  Unref(best_block);  // the cache's own reference; count hits 0 -> free list
  return true;
}

StatusOr<std::int32_t> KvBlockPool::AllocBlock() {
  if (free_.empty() && !EvictOne()) {
    return ResourceExhaustedError(
        "kv block pool exhausted: all " + std::to_string(num_blocks()) +
        " blocks pinned by live sessions");
  }
  KTX_CHECK(!free_.empty());
  const std::int32_t block = free_.back();
  free_.pop_back();
  KTX_CHECK_EQ(ref_counts_[static_cast<std::size_t>(block)], 0);
  ref_counts_[static_cast<std::size_t>(block)] = 1;
  return block;
}

void KvBlockPool::Ref(std::int32_t block) {
  KTX_CHECK(block >= 0 && block < num_blocks());
  KTX_CHECK_GE(ref_counts_[static_cast<std::size_t>(block)], 1)
      << "Ref on a free block";
  ++ref_counts_[static_cast<std::size_t>(block)];
}

void KvBlockPool::Unref(std::int32_t block) {
  KTX_CHECK(block >= 0 && block < num_blocks());
  int& count = ref_counts_[static_cast<std::size_t>(block)];
  KTX_CHECK_GE(count, 1) << "Unref on a free block";
  if (--count == 0) {
    KTX_CHECK(block_hash_.find(block) == block_hash_.end())
        << "registered prefix block dropped to ref count 0 without eviction";
    free_.push_back(block);
  }
}

void KvBlockPool::CopyBlockRows(std::int32_t src, std::int32_t dst, std::int64_t rows) {
  KTX_CHECK(rows >= 0 && rows <= block_size());
  auto copy = [&](std::vector<Tensor>& stream) {
    for (Tensor& t : stream) {
      const std::int64_t dim = t.dim(1);
      std::memcpy(t.f32() + dst * block_size() * dim, t.f32() + src * block_size() * dim,
                  static_cast<std::size_t>(rows * dim) * sizeof(float));
    }
  };
  copy(gqa_k_);
  copy(gqa_v_);
  copy(mla_ckv_);
  copy(mla_krope_);
  KTX_TRACE_INSTANT_ARG("kv", "cow_copy", "rows", rows);
}

void KvBlockPool::RegisterPrefix(std::uint64_t hash, std::int32_t block) {
  if (prefix_cache_.find(hash) != prefix_cache_.end()) {
    return;  // first writer wins; the caller keeps its private copy
  }
  prefix_cache_[hash] = CacheEntry{block, ++lru_clock_};
  block_hash_[block] = hash;
  Ref(block);  // the cache's own reference
}

std::vector<std::int32_t> KvBlockPool::MatchPrefix(
    const std::vector<std::uint64_t>& hashes) {
  if (!hashes.empty()) {
    ++prefix_lookups_;
  }
  std::vector<std::int32_t> blocks;
  for (std::uint64_t hash : hashes) {
    auto it = prefix_cache_.find(hash);
    if (it == prefix_cache_.end()) {
      break;
    }
    it->second.recency = ++lru_clock_;
    blocks.push_back(it->second.block);
  }
  if (!blocks.empty()) {
    ++prefix_hits_;
    KTX_TRACE_INSTANT_ARG("kv", "prefix_hit", "blocks", blocks.size());
  }
  return blocks;
}

}  // namespace ktx
