#include "src/model/tokenizer.h"

namespace ktx {

std::vector<int> ByteTokenizer::Encode(const std::string& text, bool add_bos) const {
  std::vector<int> ids;
  ids.reserve(text.size() + 1);
  if (add_bos) {
    ids.push_back(kBos);
  }
  for (unsigned char c : text) {
    ids.push_back(static_cast<int>(c));
  }
  return ids;
}

std::string ByteTokenizer::Decode(const std::vector<int>& ids) const {
  std::string out;
  out.reserve(ids.size());
  for (int id : ids) {
    if (id >= 0 && id < 256) {
      out.push_back(static_cast<char>(id));
    } else if (id != kBos && id != kEos) {
      out += "\xef\xbf\xbd";
    }
  }
  return out;
}

}  // namespace ktx
