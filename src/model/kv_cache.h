// Key/value caches for incremental decoding.
//
// GQA layers cache per-position keys and values ([max_seq, kv_heads*head_dim]
// each). MLA layers cache the joint latent c_kv ([max_seq, kv_lora_rank]) and
// the shared decoupled-RoPE key ([max_seq, rope_dim]) — the compression that
// makes DeepSeek's KV footprint small enough for long local contexts.
//
// Capacity is enforced: the cache tensors are max_seq rows, and advancing the
// position past them would write out of bounds. Callers on untrusted paths
// (engine decode/prefill, serving loop) check remaining()/TryAdvance and turn
// exhaustion into a recoverable Status (the `kv_exhausted` finish reason);
// Advance itself KTX_CHECKs as a last-resort invariant for internal callers.

#ifndef KTX_SRC_MODEL_KV_CACHE_H_
#define KTX_SRC_MODEL_KV_CACHE_H_

#include <vector>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct KvLayerCache {
  // GQA
  Tensor k;  // [max_seq, kv_heads * head_dim]
  Tensor v;
  // MLA
  Tensor ckv;     // [max_seq, kv_lora_rank]
  Tensor k_rope;  // [max_seq, rope_dim]
};

class KvCache {
 public:
  KvCache() = default;  // no storage; max_seq() == 0 means "no capacity bound"
  explicit KvCache(const MoeModelConfig& config);

  KvLayerCache& layer(int i) { return layers_[static_cast<std::size_t>(i)]; }
  const KvLayerCache& layer(int i) const { return layers_[static_cast<std::size_t>(i)]; }

  std::int64_t position() const { return position_; }
  std::int64_t max_seq() const { return max_seq_; }
  // Positions left before the cache tensors run out (INT64_MAX-ish when
  // unbounded, i.e. a default-constructed cache with no storage).
  std::int64_t remaining() const {
    return max_seq_ == 0 ? (std::int64_t{1} << 62) : max_seq_ - position_;
  }
  bool CanAdvance(std::int64_t tokens) const { return tokens <= remaining(); }

  // Recoverable capacity check: OK and advances, or kResourceExhausted and
  // leaves the position untouched.
  Status TryAdvance(std::int64_t tokens);
  // Internal-invariant flavor: callers must have checked capacity already.
  void Advance(std::int64_t tokens) {
    KTX_CHECK(CanAdvance(tokens)) << "KV cache overrun: position " << position_ << " + "
                                  << tokens << " exceeds max_seq " << max_seq_;
    position_ += tokens;
  }
  void Reset() { position_ = 0; }

  // Bytes of cache state per position (capacity-planning reports).
  std::size_t BytesPerPosition() const { return bytes_per_position_; }

 private:
  std::vector<KvLayerCache> layers_;
  std::int64_t position_ = 0;
  std::int64_t max_seq_ = 0;  // 0 = unbounded (storage-free default cache)
  std::size_t bytes_per_position_ = 0;
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_KV_CACHE_H_
