// Key/value caches for incremental decoding: contiguous or paged.
//
// GQA layers cache per-position keys and values ([seq, kv_heads*head_dim]
// each). MLA layers cache the joint latent c_kv ([seq, kv_lora_rank]) and the
// shared decoupled-RoPE key ([seq, rope_dim]) — the compression that makes
// DeepSeek's KV footprint small enough for long local contexts.
//
// Two storage modes behind one row-addressed view:
//
//   * Contiguous (legacy): one max_seq-row tensor per layer per stream,
//     allocated up front. Simple, private, and the bit-identity baseline.
//   * Paged: rows live in fixed-size blocks owned by a shared KvBlockPool;
//     the cache holds a *block table* (block ids, in position order) and
//     commits memory lazily, block by block, as the context grows
//     (PrepareAppend). Blocks are ref-counted, so many sessions can map the
//     same physical blocks for a shared prompt prefix (AdoptPrefix /
//     CloneFrom); the first append into a shared partial block triggers a
//     copy-on-write so divergence never corrupts a sibling or the pool's
//     prefix cache.
//
// Attention reads and writes rows through KvLayerView, which performs the
// block-table indirection per row (or a plain stride in contiguous mode) and
// exposes contiguous runs for windowed GEMMs. Views are built at use time —
// inside captured kernels this means at *execution* time, so a growing block
// table never invalidates a captured decode graph.
//
// Capacity is enforced: callers on untrusted paths (engine decode/prefill,
// serving loop) check remaining()/PrepareAppend and turn exhaustion into a
// recoverable Status (the `kv_exhausted` finish reason); Advance itself
// KTX_CHECKs as a last-resort invariant for internal callers. A
// default-constructed cache has no storage and no capacity bound — callers
// must consult has_capacity_bound() before asking for remaining().

#ifndef KTX_SRC_MODEL_KV_CACHE_H_
#define KTX_SRC_MODEL_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/model/config.h"
#include "src/model/kv_block_pool.h"
#include "src/tensor/tensor.h"

namespace ktx {

// Row-addressed window into one layer's cache. Cheap to construct (built per
// kernel execution); writable by design — attention appends rows through it.
class KvLayerView {
 public:
  KvLayerView() = default;

  // GQA rows.
  float* k_row(std::int64_t pos) const { return k_ + phys(pos) * kv_dim_; }
  float* v_row(std::int64_t pos) const { return v_ + phys(pos) * kv_dim_; }
  // MLA rows.
  float* ckv_row(std::int64_t pos) const { return ckv_ + phys(pos) * lora_; }
  float* k_rope_row(std::int64_t pos) const { return k_rope_ + phys(pos) * rope_; }

  // Length of the physically-contiguous run starting at pos, capped at
  // `end` — the whole window in contiguous mode, at most a block in paged
  // mode. Lets windowed GEMMs (MLA latent up-projections) run block by block
  // with zero gathers.
  std::int64_t run_length(std::int64_t pos, std::int64_t end) const {
    const std::int64_t left = end - pos;
    if (table_ == nullptr) {
      return left;
    }
    const std::int64_t in_block = block_size_ - pos % block_size_;
    return in_block < left ? in_block : left;
  }

  // Rows this view can address: max_seq (contiguous) or the rows covered by
  // the block table (paged). Appends past this are out of bounds.
  std::int64_t capacity_rows() const { return capacity_rows_; }

 private:
  friend class KvCache;

  std::int64_t phys(std::int64_t pos) const {
    return table_ == nullptr
               ? pos
               : static_cast<std::int64_t>(table_[pos / block_size_]) * block_size_ +
                     pos % block_size_;
  }

  float* k_ = nullptr;
  float* v_ = nullptr;
  float* ckv_ = nullptr;
  float* k_rope_ = nullptr;
  std::int64_t kv_dim_ = 0;
  std::int64_t lora_ = 0;
  std::int64_t rope_ = 0;
  const std::int32_t* table_ = nullptr;  // null = contiguous
  std::int64_t block_size_ = 1;
  std::int64_t capacity_rows_ = 0;
};

class KvCache {
 public:
  KvCache() = default;  // no storage; !has_capacity_bound()
  explicit KvCache(const MoeModelConfig& config);        // contiguous, max_seq rows
  KvCache(const MoeModelConfig& config, KvBlockPool* pool);  // paged (pool not owned)
  ~KvCache() { ReleaseBlocks(); }

  KvCache(const KvCache&) = delete;
  KvCache& operator=(const KvCache&) = delete;

  // Per-layer row view. Built fresh on every call so paged views always see
  // the current block table (captured kernels call this at exec time).
  KvLayerView layer(int i) const;

  bool paged() const { return pool_ != nullptr; }
  std::int64_t position() const { return position_; }
  std::int64_t max_seq() const { return max_seq_; }
  // A default-constructed cache has no storage and therefore no bound;
  // remaining() is meaningless (and KTX_CHECKs) without one.
  bool has_capacity_bound() const { return max_seq_ > 0; }
  // Positions left before this session runs out of room: the max_seq bound,
  // further capped in paged mode by what the shared pool can still supply
  // (tail-block slack + free/evictable blocks, minus one block when the next
  // append must copy-on-write a shared tail). Pool pressure makes this value
  // time-varying across sessions.
  std::int64_t remaining() const;
  bool CanAdvance(std::int64_t tokens) const {
    return !has_capacity_bound() || tokens <= remaining();
  }

  // Ensures rows [position, position+tokens) are writable: checks the
  // max_seq bound, copy-on-writes a shared tail block, and allocates any
  // missing blocks from the pool (contiguous mode only checks). Recoverable:
  // kResourceExhausted leaves the position untouched (already-allocated
  // blocks stay reserved in the table and are reclaimed on Reset).
  Status PrepareAppend(std::int64_t tokens);
  // Pool blocks PrepareAppend(tokens) would consume right now (new blocks
  // plus a copy-on-write block if the shared tail forces one). 0 when
  // contiguous. Lets callers validate a multi-session step against the pool
  // aggregate before mutating anything.
  std::int64_t BlocksNeededFor(std::int64_t tokens) const;

  // Recoverable capacity check + advance (storage prepared as a side
  // effect); or kResourceExhausted with the position untouched.
  Status TryAdvance(std::int64_t tokens);
  // Internal-invariant flavor: callers must have prepared capacity already.
  void Advance(std::int64_t tokens) {
    KTX_CHECK(position_ + tokens <= reserved_rows())
        << "KV cache overrun: position " << position_ << " + " << tokens
        << " exceeds prepared capacity " << reserved_rows() << " (max_seq " << max_seq_
        << ")";
    position_ += tokens;
  }
  void Reset() {
    ReleaseBlocks();
    position_ = 0;
  }

  // --- paged sharing --------------------------------------------------------
  // Maps `tokens` positions of shared prefix into this (empty) cache: refs
  // each block and sets the position. tokens must equal blocks.size() *
  // block_size (only whole blocks are shareable).
  void AdoptPrefix(const std::vector<std::int32_t>& blocks, std::int64_t tokens);
  // Forks `parent` into this empty cache: paged caches share blocks (ref
  // bump, O(blocks); first divergent append copy-on-writes), contiguous
  // caches deep-copy rows. Both must be the same mode (and pool).
  Status CloneFrom(const KvCache& parent);
  const std::vector<std::int32_t>& block_table() const { return block_table_; }
  const KvBlockPool* pool() const { return pool_; }

  // Rows currently writable without further allocation.
  std::int64_t reserved_rows() const {
    if (paged()) {
      return static_cast<std::int64_t>(block_table_.size()) * pool_->block_size();
    }
    return max_seq_ == 0 ? (std::int64_t{1} << 62) : max_seq_;
  }

  // Bytes of cache state per position (capacity-planning reports).
  std::size_t BytesPerPosition() const { return bytes_per_position_; }

 private:
  struct LayerStorage {
    // GQA
    Tensor k;  // [max_seq, kv_heads * head_dim]
    Tensor v;
    // MLA
    Tensor ckv;     // [max_seq, kv_lora_rank]
    Tensor k_rope;  // [max_seq, rope_dim]
  };

  void ReleaseBlocks();

  std::vector<LayerStorage> layers_;  // contiguous mode
  KvBlockPool* pool_ = nullptr;       // paged mode; not owned
  std::vector<std::int32_t> block_table_;

  AttentionKind attention_ = AttentionKind::kGqa;
  std::int64_t kv_dim_ = 0;
  std::int64_t lora_ = 0;
  std::int64_t rope_ = 0;
  std::int64_t position_ = 0;
  std::int64_t max_seq_ = 0;  // 0 = unbounded (storage-free default cache)
  std::size_t bytes_per_position_ = 0;
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_KV_CACHE_H_
