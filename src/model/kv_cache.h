// Key/value caches for incremental decoding.
//
// GQA layers cache per-position keys and values ([max_seq, kv_heads*head_dim]
// each). MLA layers cache the joint latent c_kv ([max_seq, kv_lora_rank]) and
// the shared decoupled-RoPE key ([max_seq, rope_dim]) — the compression that
// makes DeepSeek's KV footprint small enough for long local contexts.

#ifndef KTX_SRC_MODEL_KV_CACHE_H_
#define KTX_SRC_MODEL_KV_CACHE_H_

#include <vector>

#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct KvLayerCache {
  // GQA
  Tensor k;  // [max_seq, kv_heads * head_dim]
  Tensor v;
  // MLA
  Tensor ckv;     // [max_seq, kv_lora_rank]
  Tensor k_rope;  // [max_seq, rope_dim]
};

class KvCache {
 public:
  KvCache() = default;
  explicit KvCache(const MoeModelConfig& config);

  KvLayerCache& layer(int i) { return layers_[static_cast<std::size_t>(i)]; }
  const KvLayerCache& layer(int i) const { return layers_[static_cast<std::size_t>(i)]; }

  std::int64_t position() const { return position_; }
  void Advance(std::int64_t tokens) { position_ += tokens; }
  void Reset() { position_ = 0; }

  // Bytes of cache state per position (capacity-planning reports).
  std::size_t BytesPerPosition() const { return bytes_per_position_; }

 private:
  std::vector<KvLayerCache> layers_;
  std::int64_t position_ = 0;
  std::size_t bytes_per_position_ = 0;
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_KV_CACHE_H_
