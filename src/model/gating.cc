#include "src/model/gating.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/logging.h"
#include "src/cpu/activation.h"
#include "src/cpu/gemm.h"

namespace ktx {

namespace {

struct Scored {
  int expert;
  float score;      // used for the output weight
  float selection;  // used for ranking (score + bias for DS-3)
};

void SoftmaxTopK(const MoeModelConfig& config, const float* logits, std::vector<Scored>* out) {
  std::vector<float> probs(logits, logits + config.num_experts);
  Softmax(probs.data(), config.num_experts);
  std::vector<int> idx(static_cast<std::size_t>(config.num_experts));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + config.top_k, idx.end(),
                    [&](int a, int b) { return probs[a] > probs[b]; });
  out->clear();
  for (int s = 0; s < config.top_k; ++s) {
    const int e = idx[static_cast<std::size_t>(s)];
    out->push_back(Scored{e, probs[static_cast<std::size_t>(e)],
                          probs[static_cast<std::size_t>(e)]});
  }
}

void GroupedSigmoidTopK(const MoeModelConfig& config, const float* logits, const float* bias,
                        std::vector<Scored>* out) {
  const int experts = config.num_experts;
  const int groups = config.n_group;
  KTX_CHECK_EQ(experts % groups, 0);
  const int per_group = experts / groups;

  std::vector<float> scores(static_cast<std::size_t>(experts));
  std::vector<float> selection(static_cast<std::size_t>(experts));
  for (int e = 0; e < experts; ++e) {
    scores[static_cast<std::size_t>(e)] = 1.0f / (1.0f + std::exp(-logits[e]));
    selection[static_cast<std::size_t>(e)] =
        scores[static_cast<std::size_t>(e)] + (bias != nullptr ? bias[e] : 0.0f);
  }

  // Group score = sum of the group's top-2 selection scores.
  std::vector<std::pair<float, int>> group_scores;
  for (int g = 0; g < groups; ++g) {
    float best = -1e30f;
    float second = -1e30f;
    for (int i = 0; i < per_group; ++i) {
      const float v = selection[static_cast<std::size_t>(g * per_group + i)];
      if (v > best) {
        second = best;
        best = v;
      } else if (v > second) {
        second = v;
      }
    }
    group_scores.emplace_back(best + (per_group > 1 ? second : 0.0f), g);
  }
  std::partial_sort(group_scores.begin(), group_scores.begin() + config.topk_group,
                    group_scores.end(), std::greater<>());

  std::vector<int> eligible;
  for (int gi = 0; gi < config.topk_group; ++gi) {
    const int g = group_scores[static_cast<std::size_t>(gi)].second;
    for (int i = 0; i < per_group; ++i) {
      eligible.push_back(g * per_group + i);
    }
  }
  std::partial_sort(eligible.begin(), eligible.begin() + config.top_k, eligible.end(),
                    [&](int a, int b) {
                      return selection[static_cast<std::size_t>(a)] >
                             selection[static_cast<std::size_t>(b)];
                    });
  out->clear();
  float sum = 0.0f;
  for (int s = 0; s < config.top_k; ++s) {
    const int e = eligible[static_cast<std::size_t>(s)];
    sum += scores[static_cast<std::size_t>(e)];
    out->push_back(
        Scored{e, scores[static_cast<std::size_t>(e)], selection[static_cast<std::size_t>(e)]});
  }
  // Normalize weights over the selected set (bias affects selection only).
  for (Scored& sc : *out) {
    sc.score = sum > 0.0f ? sc.score / sum : 1.0f / config.top_k;
  }
}

}  // namespace

MoeRouting ComputeRouting(const MoeModelConfig& config, const Tensor& router,
                          const Tensor& bias, const float* x, std::int64_t tokens) {
  KTX_CHECK_EQ(router.dim(0), config.num_experts);
  KTX_CHECK_EQ(router.dim(1), config.hidden);
  MoeRouting routing;
  routing.tokens = tokens;
  routing.top_k = config.top_k;
  routing.expert_ids.reserve(static_cast<std::size_t>(tokens * config.top_k));
  routing.weights.reserve(static_cast<std::size_t>(tokens * config.top_k));

  std::vector<float> logits(static_cast<std::size_t>(config.num_experts));
  std::vector<Scored> scored;
  const float* bias_ptr = bias.numel() == config.num_experts ? bias.f32() : nullptr;
  for (std::int64_t t = 0; t < tokens; ++t) {
    RefGemm(x + t * config.hidden, 1, config.hidden, router, logits.data(),
            config.num_experts);
    if (config.gating == GatingKind::kSoftmaxTopK) {
      SoftmaxTopK(config, logits.data(), &scored);
    } else {
      GroupedSigmoidTopK(config, logits.data(), bias_ptr, &scored);
    }
    // Slots ordered by descending selection score (deferral depends on this).
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) { return a.selection > b.selection; });
    for (const Scored& s : scored) {
      routing.expert_ids.push_back(s.expert);
      routing.weights.push_back(s.score * config.routed_scaling);
    }
  }
  return routing;
}

}  // namespace ktx
