// Byte-level tokenizer.
//
// Real deployments pair KTransformers with the model's BPE tokenizer; for a
// self-contained reproduction a byte-level vocabulary (ids 0-255 = raw bytes,
// plus BOS/EOS specials) is sufficient to drive text in and out of the
// engine. Any model config with vocab >= 258 works.

#ifndef KTX_SRC_MODEL_TOKENIZER_H_
#define KTX_SRC_MODEL_TOKENIZER_H_

#include <string>
#include <vector>

namespace ktx {

class ByteTokenizer {
 public:
  static constexpr int kBos = 256;
  static constexpr int kEos = 257;
  static constexpr int kVocabSize = 258;

  // Encodes UTF-8 text as raw bytes, optionally wrapped in BOS.
  std::vector<int> Encode(const std::string& text, bool add_bos = true) const;

  // Decodes ids back to text; specials are dropped, out-of-range ids rendered
  // as '\xef\xbf\xbd' (U+FFFD replacement) so corrupt streams stay visible.
  std::string Decode(const std::vector<int>& ids) const;

  int vocab_size() const { return kVocabSize; }
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_TOKENIZER_H_
