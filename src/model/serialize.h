// Model checkpoint serialization.
//
// A compact binary container ("KTXC") holding a MoeModelConfig and all model
// tensors, so generated models can be saved once and reloaded by examples,
// tools and tests without regenerating. The format is deliberately simple and
// versioned:
//
//   [magic "KTXC"][u32 version]
//   [config block: tagged scalar fields]
//   [u32 tensor_count] then per tensor:
//     [name length + bytes][u8 dtype][u8 rank][i64 dims...][payload bytes]
//
// All integers little-endian. Loading validates magic, version, dtype tags,
// dimension sanity and payload sizes, and fails with a Status (never UB) on
// truncated or corrupted input.
//
// KV-state serialization ("KTXV") captures one session's cache content —
// rows [0, position) of every layer and stream — gathered LOGICALLY by
// position. Physical layout (contiguous rows vs paged block tables, shared
// or private blocks) never leaks into the bytes, so a paged cache with a
// shared-prefix block table serializes identically to a contiguous cache
// holding the same values, and state round-trips across storage modes. This
// is the KV-shipping primitive for the scale-out tier (ROADMAP item 5).

#ifndef KTX_SRC_MODEL_SERIALIZE_H_
#define KTX_SRC_MODEL_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/model/kv_cache.h"
#include "src/model/weights.h"

namespace ktx {

struct ModelFile {
  MoeModelConfig config;
  ModelWeights weights;
};

// Serializes config + weights to the given path (atomically via temp file).
Status SaveModel(const std::string& path, const MoeModelConfig& config,
                 const ModelWeights& weights);

// Loads and validates a checkpoint.
StatusOr<ModelFile> LoadModel(const std::string& path);

// In-memory variants (the file functions are thin wrappers; these make
// round-trip tests and fuzz-ish corruption tests cheap).
std::string SerializeModel(const MoeModelConfig& config, const ModelWeights& weights);
StatusOr<ModelFile> DeserializeModel(const std::string& bytes);

// Serializes `cache`'s live rows ([0, position), every layer/stream) into a
// KTXV blob. Rows are gathered by logical position: storage mode (paged or
// contiguous) and block sharing never affect the bytes.
std::string SerializeKvState(const MoeModelConfig& config, const KvCache& cache);
// Restores a KTXV blob into `cache`, which must sit exactly at `start_pos`
// (default 0: an empty cache) and be built for the same attention geometry;
// rows [0, start_pos) of the blob are skipped — the caller vouches that the
// cache already holds them (e.g. adopted from a paged prefix cache, so the
// physical bits are the very ones that were serialized). Rows [start_pos,
// position) are copied in; paged caches allocate blocks from their pool as
// needed (kResourceExhausted if it cannot, position untouched). Validates
// magic, version, geometry, and payload size.
Status DeserializeKvState(const std::string& bytes, const MoeModelConfig& config,
                          KvCache* cache, std::int64_t start_pos = 0);

}  // namespace ktx

#endif  // KTX_SRC_MODEL_SERIALIZE_H_
