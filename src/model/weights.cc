#include "src/model/weights.h"

#include <cmath>

#include "src/common/rng.h"

namespace ktx {

namespace {

// Fan-in-scaled init keeps activation magnitudes stable through depth, which
// matters for the deferral/skipping perturbation experiments: the model must
// behave like a trained network numerically (bounded activations), even
// though its outputs are synthetic.
Tensor Init(std::vector<std::int64_t> shape, Rng& rng) {
  const float fan_in = static_cast<float>(shape.back());
  return Tensor::Randn(std::move(shape), rng, 1.0f / std::sqrt(fan_in));
}

}  // namespace

ModelWeights ModelWeights::Generate(const MoeModelConfig& config, std::uint64_t seed) {
  Rng root(seed);
  ModelWeights w;
  {
    Rng rng = root.Split(0xE0B);
    w.embedding = Init({config.vocab, config.hidden}, rng);
    w.lm_head = Init({config.vocab, config.hidden}, rng);
    w.final_norm = Tensor::Full({config.hidden}, 1.0f);
  }
  w.layers.resize(static_cast<std::size_t>(config.num_layers));
  for (int l = 0; l < config.num_layers; ++l) {
    Rng rng = root.Split(static_cast<std::uint64_t>(l) + 1);
    LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    lw.attn_norm = Tensor::Full({config.hidden}, 1.0f);
    lw.ffn_norm = Tensor::Full({config.hidden}, 1.0f);

    if (config.attention == AttentionKind::kMla) {
      const std::int64_t qk_head = config.head_dim + config.rope_dim;
      if (config.q_lora_rank > 0) {
        lw.attn.w_dq = Init({config.q_lora_rank, config.hidden}, rng);
        lw.attn.w_uq = Init({config.num_heads * qk_head, config.q_lora_rank}, rng);
      } else {
        lw.attn.w_uq = Init({config.num_heads * qk_head, config.hidden}, rng);
      }
      lw.attn.w_dkv = Init({config.kv_lora_rank + config.rope_dim, config.hidden}, rng);
      lw.attn.w_uk = Init({config.num_heads * config.head_dim, config.kv_lora_rank}, rng);
      lw.attn.w_uv = Init({config.num_heads * config.v_head_dim, config.kv_lora_rank}, rng);
      lw.attn.wo = Init({config.hidden, config.num_heads * config.v_head_dim}, rng);
    } else {
      lw.attn.wq = Init({config.num_heads * config.head_dim, config.hidden}, rng);
      lw.attn.wk = Init({config.num_kv_heads * config.head_dim, config.hidden}, rng);
      lw.attn.wv = Init({config.num_kv_heads * config.head_dim, config.hidden}, rng);
      lw.attn.wo = Init({config.hidden, config.num_heads * config.head_dim}, rng);
    }

    if (!config.is_moe_layer(l)) {
      lw.dense_gate = Init({config.dense_inter, config.hidden}, rng);
      lw.dense_up = Init({config.dense_inter, config.hidden}, rng);
      lw.dense_down = Init({config.hidden, config.dense_inter}, rng);
      continue;
    }
    lw.router = Init({config.num_experts, config.hidden}, rng);
    if (config.gating == GatingKind::kGroupedSigmoidTopK) {
      lw.router_bias = Tensor::Randn({config.num_experts}, rng, 0.01f);
    }
    if (config.n_shared_experts > 0) {
      lw.shared_gate = Init({config.shared_inter(), config.hidden}, rng);
      lw.shared_up = Init({config.shared_inter(), config.hidden}, rng);
      lw.shared_down = Init({config.hidden, config.shared_inter()}, rng);
    }
    lw.expert_gate.reserve(static_cast<std::size_t>(config.num_experts));
    for (int e = 0; e < config.num_experts; ++e) {
      Rng er = rng.Split(static_cast<std::uint64_t>(e) + 100);
      lw.expert_gate.push_back(Init({config.moe_inter, config.hidden}, er));
      lw.expert_up.push_back(Init({config.moe_inter, config.hidden}, er));
      lw.expert_down.push_back(Init({config.hidden, config.moe_inter}, er));
    }
  }
  return w;
}

}  // namespace ktx
