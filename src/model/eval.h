// Model quality evaluation: perplexity and cross-model divergence.
//
// The paper's accuracy story (Table 2, Fig. 13) is about how little Expert
// Deferral changes the model. Besides the top-1 proxies in bench/, perplexity
// under teacher forcing is the standard language-model quality measure, and
// the perplexity *delta* between a modified and an unmodified execution is a
// weight-free way to rank perturbations (deferral vs skipping vs
// quantization) on synthetic corpora.

#ifndef KTX_SRC_MODEL_EVAL_H_
#define KTX_SRC_MODEL_EVAL_H_

#include <vector>

#include "src/model/reference_model.h"

namespace ktx {

struct EvalResult {
  double perplexity = 0.0;      // exp(mean NLL) over predicted positions
  double mean_nll = 0.0;        // nats/token
  std::int64_t positions = 0;   // predictions scored
};

// Teacher-forced perplexity of `model` on `tokens` (positions 1..n-1 are
// scored against the model's prediction from the prefix).
EvalResult EvaluatePerplexity(const RefModel& model, const std::vector<int>& tokens,
                              const ForwardOptions& options = {});

// Mean KL(base || variant) per position between two execution modes of the
// same model on the same tokens — the behaviour-change measure.
double ExecutionDivergence(const RefModel& model, const std::vector<int>& tokens,
                           const ForwardOptions& base, const ForwardOptions& variant);

// A synthetic corpus with Zipf-distributed token frequencies (Wikitext-like
// unigram statistics; the paper's workloads use Wikitext prompts).
std::vector<int> SyntheticCorpus(std::int64_t vocab, std::int64_t length, double zipf_skew,
                                 std::uint64_t seed);

}  // namespace ktx

#endif  // KTX_SRC_MODEL_EVAL_H_
