#include "src/model/eval.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/cpu/activation.h"

namespace ktx {

namespace {

// log softmax(logits)[target] computed stably.
double LogProb(const float* logits, std::int64_t vocab, int target) {
  float max_v = logits[0];
  for (std::int64_t i = 1; i < vocab; ++i) {
    max_v = std::max(max_v, logits[i]);
  }
  double denom = 0.0;
  for (std::int64_t i = 0; i < vocab; ++i) {
    denom += std::exp(static_cast<double>(logits[i]) - max_v);
  }
  return static_cast<double>(logits[target]) - max_v - std::log(denom);
}

}  // namespace

EvalResult EvaluatePerplexity(const RefModel& model, const std::vector<int>& tokens,
                              const ForwardOptions& options) {
  KTX_CHECK_GE(tokens.size(), 2u);
  KvCache cache(model.config());
  const Tensor logits = model.Forward(tokens, &cache, options);
  const std::int64_t vocab = logits.dim(1);
  EvalResult result;
  double nll = 0.0;
  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    nll -= LogProb(logits.f32() + static_cast<std::int64_t>(t) * vocab, vocab,
                   tokens[t + 1]);
    ++result.positions;
  }
  result.mean_nll = nll / static_cast<double>(result.positions);
  result.perplexity = std::exp(result.mean_nll);
  return result;
}

double ExecutionDivergence(const RefModel& model, const std::vector<int>& tokens,
                           const ForwardOptions& base, const ForwardOptions& variant) {
  KvCache ca(model.config());
  KvCache cb(model.config());
  const Tensor a = model.Forward(tokens, &ca, base);
  const Tensor b = model.Forward(tokens, &cb, variant);
  const std::int64_t vocab = a.dim(1);
  const std::int64_t rows = a.dim(0);
  std::vector<float> p(static_cast<std::size_t>(vocab));
  std::vector<float> q(static_cast<std::size_t>(vocab));
  double kl_sum = 0.0;
  for (std::int64_t t = 0; t < rows; ++t) {
    std::copy(a.f32() + t * vocab, a.f32() + (t + 1) * vocab, p.begin());
    std::copy(b.f32() + t * vocab, b.f32() + (t + 1) * vocab, q.begin());
    Softmax(p.data(), vocab);
    Softmax(q.data(), vocab);
    double kl = 0.0;
    for (std::int64_t i = 0; i < vocab; ++i) {
      if (p[static_cast<std::size_t>(i)] > 1e-12f) {
        kl += p[static_cast<std::size_t>(i)] *
              std::log(p[static_cast<std::size_t>(i)] /
                       std::max(q[static_cast<std::size_t>(i)], 1e-12f));
      }
    }
    kl_sum += kl;
  }
  return kl_sum / static_cast<double>(rows);
}

std::vector<int> SyntheticCorpus(std::int64_t vocab, std::int64_t length, double zipf_skew,
                                 std::uint64_t seed) {
  KTX_CHECK_GT(vocab, 1);
  Rng rng(seed);
  // Zipf CDF over a shuffled identity mapping so "frequent" ids are spread
  // over the vocabulary.
  std::vector<double> cdf(static_cast<std::size_t>(vocab));
  double total = 0.0;
  for (std::int64_t i = 0; i < vocab; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_skew);
    cdf[static_cast<std::size_t>(i)] = total;
  }
  std::vector<int> mapping(static_cast<std::size_t>(vocab));
  for (std::int64_t i = 0; i < vocab; ++i) {
    mapping[static_cast<std::size_t>(i)] = static_cast<int>(i);
  }
  for (std::int64_t i = vocab - 1; i > 0; --i) {
    std::swap(mapping[static_cast<std::size_t>(i)],
              mapping[rng.NextBounded(static_cast<std::uint64_t>(i + 1))]);
  }
  std::vector<int> corpus;
  corpus.reserve(static_cast<std::size_t>(length));
  for (std::int64_t n = 0; n < length; ++n) {
    const double r = rng.NextDouble() * total;
    std::int64_t lo = 0;
    std::int64_t hi = vocab - 1;
    while (lo < hi) {
      const std::int64_t mid = (lo + hi) / 2;
      if (cdf[static_cast<std::size_t>(mid)] < r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    corpus.push_back(mapping[static_cast<std::size_t>(lo)]);
  }
  return corpus;
}

}  // namespace ktx
