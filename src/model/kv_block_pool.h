// Fixed-size KV block pool with ref counting and a shared-prefix cache.
//
// The pool owns ALL KV storage for a paged engine: per layer, one tensor of
// [num_blocks * block_size, row_dim] rows for each cached stream (K and V for
// GQA; the joint latent c_kv and the decoupled-RoPE key for MLA). Sessions
// hold *block tables* — lists of block ids — instead of contiguous max_seq
// allocations, so memory is committed block-by-block as contexts actually
// grow and the same physical block can back the shared prefix of many
// sessions at once.
//
// Ref counting: a block's count is the number of block-table references
// (sessions) plus one if the prefix cache holds it. Unref to zero returns the
// block to the free list. Copy-on-write is the caller's (KvCache's) job: it
// copies a block before writing into one with ref_count > 1; the pool only
// provides CopyBlockRows.
//
// Prefix cache: full blocks of *prompt* tokens are registered under a chained
// token hash (hash of block i commits to every token in blocks [0, i]), so a
// lookup for a new prompt walks its hash chain and reuses the longest run of
// cached full blocks — turning that much prefill into a ref-count bump. The
// cache holds its own reference; blocks whose only reference is the cache are
// *evictable* and are reclaimed LRU when AllocBlock finds the free list
// empty. Matching is by 64-bit chained hash alone (no token re-verification);
// a collision would silently share a wrong prefix, which at these hash widths
// is vanishingly unlikely and an accepted trade (vLLM makes the same one with
// its block hashes).
//
// Thread-compatibility: like KvCache, the pool is mutated only between engine
// steps (single-threaded control plane); captured kernels only read row
// storage through views during a step. No internal locking.

#ifndef KTX_SRC_MODEL_KV_BLOCK_POOL_H_
#define KTX_SRC_MODEL_KV_BLOCK_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace ktx {

struct KvPoolOptions {
  std::int64_t block_size = 16;  // tokens (rows) per block
  std::int64_t num_blocks = 0;   // pool capacity; must be >= 1
};

// Chained per-block hashes for the FULL blocks of a token sequence: entry i
// commits to tokens [0, (i+1)*block_size). Trailing partial blocks get no
// hash — only full blocks are shareable.
std::vector<std::uint64_t> HashTokenBlocks(const std::vector<int>& tokens,
                                           std::int64_t block_size);

class KvBlockPool {
 public:
  struct Stats {
    std::int64_t total_blocks = 0;
    std::int64_t free_blocks = 0;       // on the free list
    std::int64_t cached_blocks = 0;     // registered in the prefix cache
    std::int64_t evictable_blocks = 0;  // cached AND referenced only by the cache
    std::int64_t blocks_in_use = 0;     // total - free
    std::int64_t cow_copies = 0;        // lifetime copy-on-write block copies
    std::int64_t evictions = 0;         // lifetime prefix-cache evictions
    std::int64_t prefix_lookups = 0;    // MatchPrefix calls with >= 1 full block
    std::int64_t prefix_hits = 0;       // lookups that matched >= 1 block
  };

  KvBlockPool(const MoeModelConfig& config, KvPoolOptions options);

  std::int64_t block_size() const { return options_.block_size; }
  std::int64_t num_blocks() const { return options_.num_blocks; }
  std::int64_t free_blocks() const { return static_cast<std::int64_t>(free_.size()); }
  // Blocks an allocation could obtain right now: free + evictable.
  std::int64_t available_blocks() const;
  std::int64_t blocks_in_use() const { return num_blocks() - free_blocks(); }
  std::size_t bytes_per_position() const { return bytes_per_position_; }
  int ref_count(std::int32_t block) const {
    return ref_counts_[static_cast<std::size_t>(block)];
  }
  Stats stats() const;

  // Allocates one block (free list first, then LRU eviction of a
  // cache-only block), with ref count 1. kResourceExhausted when every block
  // is pinned by a live reference.
  StatusOr<std::int32_t> AllocBlock();
  void Ref(std::int32_t block);
  void Unref(std::int32_t block);

  // Copies the first `rows` rows of src into dst across every layer and
  // stream (the COW primitive).
  void CopyBlockRows(std::int32_t src, std::int32_t dst, std::int64_t rows);

  // --- prefix cache ---------------------------------------------------------
  // Registers `block` under the chained hash. The cache takes its own
  // reference. A hash that is already registered is left untouched (first
  // writer wins; the caller keeps using its private copy).
  void RegisterPrefix(std::uint64_t hash, std::int32_t block);
  // Longest cached run: walks hashes[0..] while each is registered and
  // returns the matching block ids (refs are NOT bumped — callers adopt via
  // KvCache::AdoptPrefix, which refs). Touches LRU recency on hits.
  std::vector<std::int32_t> MatchPrefix(const std::vector<std::uint64_t>& hashes);

  // --- raw storage (for KvLayerView) ----------------------------------------
  // GQA streams; null tensors under MLA (and vice versa).
  float* k_base(int layer) { return BaseOrNull(gqa_k_, layer); }
  float* v_base(int layer) { return BaseOrNull(gqa_v_, layer); }
  float* ckv_base(int layer) { return BaseOrNull(mla_ckv_, layer); }
  float* k_rope_base(int layer) { return BaseOrNull(mla_krope_, layer); }

 private:
  struct CacheEntry {
    std::int32_t block = -1;
    std::uint64_t recency = 0;  // LRU clock reading at last touch
  };

  static float* BaseOrNull(std::vector<Tensor>& t, int layer) {
    return t.empty() ? nullptr : t[static_cast<std::size_t>(layer)].f32();
  }
  // Drops the LRU evictable entry from the prefix cache; false if none.
  bool EvictOne();

  MoeModelConfig config_;
  KvPoolOptions options_;
  std::size_t bytes_per_position_ = 0;

  std::vector<Tensor> gqa_k_, gqa_v_;        // per layer [num_blocks*bs, kv_dim]
  std::vector<Tensor> mla_ckv_, mla_krope_;  // per layer [num_blocks*bs, lora/rope]

  std::vector<int> ref_counts_;       // per block
  std::vector<std::int32_t> free_;    // free list (LIFO)
  std::unordered_map<std::uint64_t, CacheEntry> prefix_cache_;   // hash -> block
  std::unordered_map<std::int32_t, std::uint64_t> block_hash_;   // reverse map
  std::uint64_t lru_clock_ = 0;
  std::int64_t cow_copies_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t prefix_lookups_ = 0;
  std::int64_t prefix_hits_ = 0;

  friend class KvCache;  // bumps cow_copies_ from PrepareAppend
};

}  // namespace ktx

#endif  // KTX_SRC_MODEL_KV_BLOCK_POOL_H_
