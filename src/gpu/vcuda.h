// Virtual CUDA ("vcuda") — a functional model of the CUDA runtime surface
// KTransformers depends on (paper §2.3, §3.3):
//
//   * streams with FIFO, asynchronous execution on a device worker thread;
//   * events (record / wait / host sync);
//   * cudaLaunchHostFunc-style host callbacks executed in stream order — the
//     primitive the asynchronous scheduler hides its submit/sync barriers in;
//   * CUDA graphs: stream capture records the op sequence instead of running
//     it; an instantiated graph replays the whole sequence with a single
//     launch, which is how the entire decode step collapses into one launch;
//   * launch statistics (kernel launches, micro-kernel decomposition, host
//     funcs, graph replays) — the quantities behind Fig. 4.
//
// There is no GPU here: kernels are host functions with cost metadata. What
// this preserves from real CUDA is the *scheduling semantics* — ordering,
// asynchrony, capture legality, host interruptions — which is the layer the
// paper's contribution lives in.

#ifndef KTX_SRC_GPU_VCUDA_H_
#define KTX_SRC_GPU_VCUDA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/sim/hardware.h"

namespace ktx {

// A logical GPU operation. `micro_kernels` models framework decomposition
// granularity: one logical op in a PyTorch-style stack fans out into many
// real kernel launches (Fig. 4: Fiddler issues >7000 launches per token,
// llama.cpp ~3000 after fusion).
struct KernelDesc {
  std::string name;
  std::function<void()> fn;  // functional body; may be empty for timing-only
  double flops = 0.0;
  double bytes = 0.0;
  int micro_kernels = 1;
};

// One executed op, wall-clock timestamped (enable via VDevice::Options).
// The functional analogue of an Nsight Systems timeline (§2.3).
struct TraceEvent {
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
  int kind = 0;  // 0 kernel, 1 host func, 2 memcpy, 3 graph
};

struct LaunchStats {
  std::atomic<std::int64_t> logical_launches{0};
  std::atomic<std::int64_t> micro_launches{0};
  std::atomic<std::int64_t> host_funcs{0};
  std::atomic<std::int64_t> memcpys{0};
  std::atomic<std::int64_t> memcpy_bytes{0};
  std::atomic<std::int64_t> graph_launches{0};
  std::atomic<std::int64_t> graph_replayed_nodes{0};

  void Reset();
  // Total front-end occupancy implied by the counted launches, given a
  // per-launch latency. Graph launches cost one replay each regardless of
  // node count — the point of the optimization.
  double LaunchOverheadSeconds(double per_launch_us, double graph_replay_us) const;
};

class VEvent {
 public:
  void Signal();
  void Wait();          // blocks until signaled
  bool Query() const;   // non-blocking
  void Reset();

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

class VStream;

// An instantiated, replayable op sequence (cudaGraphExec analog).
class VGraph {
 public:
  std::size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  // Replays the whole graph on `stream` as a single enqueue.
  void Launch(VStream* stream) const;

 private:
  friend class VStream;
  struct Node {
    enum class Kind { kKernel, kHostFunc, kMemcpy } kind;
    KernelDesc kernel;
    std::function<void()> host_fn;
    std::int64_t bytes = 0;
  };
  std::vector<Node> nodes_;
};

enum class MemcpyDir { kHostToDevice, kDeviceToHost, kDeviceToDevice };

class VDevice {
 public:
  struct Options {
    GpuSpec spec = A100_40GB();
    double launch_latency_us = 5.0;   // per logical launch (Fig. 4)
    double graph_replay_us = 3.0;     // per graph replay
    bool record_trace = false;        // wall-clock-timestamp every op
  };

  VDevice() : VDevice(Options{}) {}
  explicit VDevice(Options options);
  ~VDevice();

  VDevice(const VDevice&) = delete;
  VDevice& operator=(const VDevice&) = delete;

  // "Device" memory (host-backed, allocation-tracked against VRAM capacity).
  void* Malloc(std::size_t bytes);
  void Free(void* ptr);
  std::size_t allocated_bytes() const { return allocated_.load(); }

  const GpuSpec& spec() const { return options_.spec; }
  const Options& options() const { return options_; }
  LaunchStats& stats() { return stats_; }

  // Trace recording (only when options().record_trace). Thread-safe.
  void RecordTrace(TraceEvent event);
  std::vector<TraceEvent> TakeTrace();
  // Chrome trace-event JSON of the recorded ops (view in Perfetto).
  std::string TraceToChromeJson();

  // --- Fault injection -------------------------------------------------------
  // Chaos hooks for exercising recoverable error paths. A test (or operator
  // tooling) arms a fault under a caller-chosen key ("session:3", "device",
  // ...); the owner of the matching recoverable boundary polls TakeFault
  // there and converts a hit into a Status that propagates instead of an
  // abort. `after_polls` delays the hit — the fault fires on the
  // (after_polls+1)-th poll of its key — which is how tests land a failure
  // mid-generation rather than on the first step. Thread-safe.
  void InjectFault(std::string key, Status fault, int after_polls = 0);
  // Polls (and on a hit, disarms) the fault for `key`; OK if none armed.
  Status TakeFault(const std::string& key);
  bool has_armed_faults() const;

 private:
  Options options_;
  LaunchStats stats_;
  std::atomic<std::size_t> allocated_{0};
  std::mutex alloc_mu_;
  // ptr -> size for Free accounting.
  std::vector<std::pair<void*, std::size_t>> allocations_;
  std::mutex trace_mu_;
  std::vector<TraceEvent> trace_;
  struct ArmedFault {
    Status status;
    int polls_left = 0;
  };
  mutable std::mutex fault_mu_;
  std::map<std::string, ArmedFault> faults_;
};

// A FIFO execution stream with its own worker thread.
class VStream {
 public:
  explicit VStream(VDevice* device);
  ~VStream();

  VStream(const VStream&) = delete;
  VStream& operator=(const VStream&) = delete;

  VDevice* device() { return device_; }

  // Asynchronously enqueues a kernel (or records it while capturing).
  void Launch(KernelDesc kernel);
  // cudaLaunchHostFunc analog: `fn` runs on the stream worker, in order.
  void LaunchHostFunc(std::function<void()> fn);
  // Async copy; `copy_fn` performs the actual byte movement.
  void MemcpyAsync(std::function<void()> copy_fn, std::int64_t bytes, MemcpyDir dir);

  void RecordEvent(VEvent* event);
  // Host-side wait for all previously enqueued work.
  void Synchronize();

  // --- graph capture (cudaStreamBeginCapture analog) ------------------------
  // While capturing, enqueues record into the pending graph instead of
  // executing. Synchronize() during capture is a capture violation (it would
  // split the graph) and aborts, mirroring CUDA's error.
  void BeginCapture();
  VGraph EndCapture();
  bool capturing() const { return capturing_; }

 private:
  friend class VGraph;

  struct Op {
    enum class Kind { kKernel, kHostFunc, kMemcpy, kEventRecord, kGraph } kind;
    KernelDesc kernel;
    std::function<void()> fn;
    VEvent* event = nullptr;
    std::int64_t bytes = 0;
    const VGraph* graph = nullptr;
  };

  void Enqueue(Op op);
  void WorkerLoop();
  void ExecuteOp(const Op& op);

  VDevice* device_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Op> queue_;
  bool busy_ = false;
  bool stop_ = false;

  bool capturing_ = false;
  VGraph pending_graph_;
};

}  // namespace ktx

#endif  // KTX_SRC_GPU_VCUDA_H_
