#include "src/gpu/vcuda.h"

#include <algorithm>
#include <chrono>

#include "src/common/align.h"

namespace ktx {

// --- LaunchStats -------------------------------------------------------------

void LaunchStats::Reset() {
  logical_launches = 0;
  micro_launches = 0;
  host_funcs = 0;
  memcpys = 0;
  memcpy_bytes = 0;
  graph_launches = 0;
  graph_replayed_nodes = 0;
}

double LaunchStats::LaunchOverheadSeconds(double per_launch_us, double graph_replay_us) const {
  return micro_launches.load() * per_launch_us * 1e-6 +
         graph_launches.load() * graph_replay_us * 1e-6;
}

// --- VEvent ------------------------------------------------------------------

void VEvent::Signal() {
  // Notify while holding the lock: a waiter may destroy the event the moment
  // Wait() returns, so the cv must not be touched after the flag is visible
  // outside the critical section.
  std::lock_guard<std::mutex> lock(mu_);
  signaled_ = true;
  cv_.notify_all();
}

void VEvent::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return signaled_; });
}

bool VEvent::Query() const {
  std::lock_guard<std::mutex> lock(mu_);
  return signaled_;
}

void VEvent::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  signaled_ = false;
}

// --- VGraph ------------------------------------------------------------------

void VGraph::Launch(VStream* stream) const {
  KTX_CHECK(!stream->capturing()) << "graph launch inside capture is not supported";
  VStream::Op op;
  op.kind = VStream::Op::Kind::kGraph;
  op.graph = this;
  stream->Enqueue(std::move(op));
}

// --- VDevice -----------------------------------------------------------------

VDevice::VDevice(Options options) : options_(options) {}

VDevice::~VDevice() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  for (auto& [ptr, size] : allocations_) {
    AlignedFree(ptr);
  }
}

void* VDevice::Malloc(std::size_t bytes) {
  const std::size_t vram = static_cast<std::size_t>(options_.spec.vram_gb * 1e9);
  if (allocated_.load() + bytes > vram) {
    KTX_LOG(Warning) << "vcuda: device OOM: " << bytes << " requested, "
                     << vram - allocated_.load() << " free of " << vram;
    return nullptr;
  }
  void* ptr = AlignedAlloc(bytes);
  if (ptr != nullptr) {
    allocated_.fetch_add(bytes);
    std::lock_guard<std::mutex> lock(alloc_mu_);
    allocations_.emplace_back(ptr, bytes);
  }
  return ptr;
}

void VDevice::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto it = std::find_if(allocations_.begin(), allocations_.end(),
                         [ptr](const auto& p) { return p.first == ptr; });
  KTX_CHECK(it != allocations_.end()) << "vcuda: Free of unknown pointer";
  allocated_.fetch_sub(it->second);
  AlignedFree(ptr);
  allocations_.erase(it);
}

void VDevice::RecordTrace(TraceEvent event) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.push_back(std::move(event));
}

std::vector<TraceEvent> VDevice::TakeTrace() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return std::move(trace_);
}

std::string VDevice::TraceToChromeJson() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : trace_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"" + e.name + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(e.start_us) + ",\"dur\":" + std::to_string(e.end_us - e.start_us) +
           ",\"pid\":0,\"tid\":" + std::to_string(e.kind) + "}";
  }
  out += "]";
  return out;
}

void VDevice::InjectFault(std::string key, Status fault, int after_polls) {
  KTX_CHECK(!fault.ok()) << "InjectFault requires a non-OK status";
  std::lock_guard<std::mutex> lock(fault_mu_);
  faults_[std::move(key)] = ArmedFault{std::move(fault), std::max(0, after_polls)};
}

Status VDevice::TakeFault(const std::string& key) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  auto it = faults_.find(key);
  if (it == faults_.end()) {
    return OkStatus();
  }
  if (it->second.polls_left > 0) {
    --it->second.polls_left;
    return OkStatus();
  }
  Status fault = std::move(it->second.status);
  faults_.erase(it);
  return fault.WithContext("vcuda fault [" + key + "]");
}

bool VDevice::has_armed_faults() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return !faults_.empty();
}

// --- VStream -----------------------------------------------------------------

VStream::VStream(VDevice* device) : device_(device) {
  KTX_CHECK(device_ != nullptr);
  worker_ = std::thread([this] { WorkerLoop(); });
}

VStream::~VStream() {
  Synchronize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void VStream::Enqueue(Op op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(op));
  }
  work_cv_.notify_one();
}

void VStream::Launch(KernelDesc kernel) {
  if (capturing_) {
    VGraph::Node node;
    node.kind = VGraph::Node::Kind::kKernel;
    node.kernel = std::move(kernel);
    pending_graph_.nodes_.push_back(std::move(node));
    return;
  }
  Op op;
  op.kind = Op::Kind::kKernel;
  op.kernel = std::move(kernel);
  Enqueue(std::move(op));
}

void VStream::LaunchHostFunc(std::function<void()> fn) {
  if (capturing_) {
    VGraph::Node node;
    node.kind = VGraph::Node::Kind::kHostFunc;
    node.host_fn = std::move(fn);
    pending_graph_.nodes_.push_back(std::move(node));
    return;
  }
  Op op;
  op.kind = Op::Kind::kHostFunc;
  op.fn = std::move(fn);
  Enqueue(std::move(op));
}

void VStream::MemcpyAsync(std::function<void()> copy_fn, std::int64_t bytes, MemcpyDir dir) {
  if (capturing_) {
    VGraph::Node node;
    node.kind = VGraph::Node::Kind::kMemcpy;
    node.host_fn = std::move(copy_fn);
    node.bytes = bytes;
    pending_graph_.nodes_.push_back(std::move(node));
    return;
  }
  Op op;
  op.kind = Op::Kind::kMemcpy;
  op.fn = std::move(copy_fn);
  op.bytes = bytes;
  Enqueue(std::move(op));
}

void VStream::RecordEvent(VEvent* event) {
  KTX_CHECK(!capturing_) << "event record inside capture is not supported";
  Op op;
  op.kind = Op::Kind::kEventRecord;
  op.event = event;
  Enqueue(std::move(op));
}

void VStream::Synchronize() {
  KTX_CHECK(!capturing_) << "stream synchronize during graph capture (capture violation)";
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void VStream::BeginCapture() {
  KTX_CHECK(!capturing_) << "nested capture";
  Synchronize();
  capturing_ = true;
  pending_graph_ = VGraph();
}

VGraph VStream::EndCapture() {
  KTX_CHECK(capturing_) << "EndCapture without BeginCapture";
  capturing_ = false;
  return std::move(pending_graph_);
}

namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void VStream::ExecuteOp(const Op& op) {
  LaunchStats& stats = device_->stats();
  const bool tracing = device_->options().record_trace;
  const double t0 = tracing ? NowMicros() : 0.0;
  switch (op.kind) {
    case Op::Kind::kKernel:
      stats.logical_launches.fetch_add(1);
      stats.micro_launches.fetch_add(op.kernel.micro_kernels);
      if (op.kernel.fn) {
        op.kernel.fn();
      }
      break;
    case Op::Kind::kHostFunc:
      stats.host_funcs.fetch_add(1);
      op.fn();
      break;
    case Op::Kind::kMemcpy:
      stats.memcpys.fetch_add(1);
      stats.memcpy_bytes.fetch_add(op.bytes);
      if (op.fn) {
        op.fn();
      }
      break;
    case Op::Kind::kEventRecord:
      op.event->Signal();
      break;
    case Op::Kind::kGraph: {
      stats.graph_launches.fetch_add(1);
      const double g0 = tracing ? NowMicros() : 0.0;
      stats.graph_replayed_nodes.fetch_add(
          static_cast<std::int64_t>(op.graph->nodes_.size()));
      for (const VGraph::Node& node : op.graph->nodes_) {
        switch (node.kind) {
          case VGraph::Node::Kind::kKernel:
            // Replayed kernels execute without per-launch overhead; they are
            // counted separately via graph_replayed_nodes.
            if (node.kernel.fn) {
              node.kernel.fn();
            }
            break;
          case VGraph::Node::Kind::kHostFunc:
            stats.host_funcs.fetch_add(1);
            node.host_fn();
            break;
          case VGraph::Node::Kind::kMemcpy:
            stats.memcpys.fetch_add(1);
            stats.memcpy_bytes.fetch_add(node.bytes);
            if (node.host_fn) {
              node.host_fn();
            }
            break;
        }
      }
      if (tracing) {
        device_->RecordTrace(TraceEvent{"graph_replay", g0, NowMicros(), 3});
      }
      break;
    }
  }
  if (tracing && op.kind != Op::Kind::kGraph) {
    int kind = 0;
    std::string name = "op";
    switch (op.kind) {
      case Op::Kind::kKernel:
        kind = 0;
        name = op.kernel.name;
        break;
      case Op::Kind::kHostFunc:
        kind = 1;
        name = "host_func";
        break;
      case Op::Kind::kMemcpy:
        kind = 2;
        name = "memcpy";
        break;
      default:
        return;
    }
    device_->RecordTrace(TraceEvent{std::move(name), t0, NowMicros(), kind});
  }
}

void VStream::WorkerLoop() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    ExecuteOp(op);
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace ktx
