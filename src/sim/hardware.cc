#include "src/sim/hardware.h"

namespace ktx {

CpuSpec Xeon8452Y() {
  CpuSpec spec;
  spec.name = "2x Intel Xeon Platinum 8452Y";
  return spec;  // defaults encode the paper values
}

GpuSpec A100_40GB() {
  GpuSpec spec;
  spec.name = "NVIDIA A100 40GB";
  spec.bf16_tflops = 312.0;
  spec.mem_bw_gbs = 1555.0;
  spec.vram_gb = 40.0;
  return spec;
}

GpuSpec RTX4080_16GB() {
  GpuSpec spec;
  spec.name = "NVIDIA RTX 4080 16GB";
  spec.bf16_tflops = 48.7;
  spec.mem_bw_gbs = 716.8;
  spec.vram_gb = 16.0;
  return spec;
}

MachineSpec PaperTestbedA100() { return MachineSpec{Xeon8452Y(), A100_40GB(), PcieSpec{}}; }

MachineSpec PaperTestbed4080() { return MachineSpec{Xeon8452Y(), RTX4080_16GB(), PcieSpec{}}; }

}  // namespace ktx
