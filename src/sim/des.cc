#include "src/sim/des.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace ktx {

int EventSim::AddResource(std::string name) {
  KTX_CHECK(!has_run_);
  resource_names_.push_back(std::move(name));
  return static_cast<int>(resource_names_.size()) - 1;
}

SimTaskId EventSim::AddTask(int resource, std::string name, double duration_s,
                            std::vector<SimTaskId> deps, SimCategory category) {
  KTX_CHECK(!has_run_) << "AddTask after Run";
  KTX_CHECK(resource >= 0 && resource < num_resources()) << "bad resource " << resource;
  KTX_CHECK_GE(duration_s, 0.0);
  SimTask t;
  t.id = static_cast<SimTaskId>(tasks_.size());
  t.resource = resource;
  t.name = std::move(name);
  t.category = category;
  t.duration = duration_s;
  for (SimTaskId d : deps) {
    KTX_CHECK(d >= 0 && d < t.id) << "dependency on unknown/later task " << d;
  }
  t.deps = std::move(deps);
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

SimTaskId EventSim::AddBarrier(std::string name, std::vector<SimTaskId> deps) {
  if (barrier_resource_ < 0) {
    barrier_resource_ = AddResource("<barriers>");
  }
  return AddTask(barrier_resource_, std::move(name), 0.0, std::move(deps), SimCategory::kSync);
}

void EventSim::Run() {
  KTX_CHECK(!has_run_);
  has_run_ = true;
  std::vector<double> resource_free(resource_names_.size(), 0.0);
  // Tasks are appended in submission order and dependencies only point
  // backwards, so a single forward pass is a valid schedule.
  for (SimTask& t : tasks_) {
    double ready = resource_free[static_cast<std::size_t>(t.resource)];
    for (SimTaskId d : t.deps) {
      ready = std::max(ready, tasks_[static_cast<std::size_t>(d)].finish);
    }
    t.start = ready;
    t.finish = ready + t.duration;
    resource_free[static_cast<std::size_t>(t.resource)] = t.finish;
  }
}

double EventSim::Makespan() const {
  KTX_CHECK(has_run_);
  double end = 0.0;
  for (const SimTask& t : tasks_) {
    end = std::max(end, t.finish);
  }
  return end;
}

double EventSim::BusyTime(int resource) const {
  KTX_CHECK(has_run_);
  double busy = 0.0;
  for (const SimTask& t : tasks_) {
    if (t.resource == resource) {
      busy += t.duration;
    }
  }
  return busy;
}

double EventSim::BusyTime(int resource, SimCategory category) const {
  KTX_CHECK(has_run_);
  double busy = 0.0;
  for (const SimTask& t : tasks_) {
    if (t.resource == resource && t.category == category) {
      busy += t.duration;
    }
  }
  return busy;
}

double EventSim::Utilization(int resource) const {
  const double makespan = Makespan();
  return makespan > 0.0 ? BusyTime(resource) / makespan : 0.0;
}

double EventSim::UtilizationInWindow(int resource, double t0, double t1) const {
  KTX_CHECK(has_run_);
  KTX_CHECK_LT(t0, t1);
  double busy = 0.0;
  for (const SimTask& t : tasks_) {
    if (t.resource != resource) {
      continue;
    }
    busy += std::max(0.0, std::min(t.finish, t1) - std::max(t.start, t0));
  }
  return busy / (t1 - t0);
}

std::string EventSim::AsciiTimeline(int columns) const {
  KTX_CHECK(has_run_);
  const double makespan = Makespan();
  std::ostringstream os;
  if (makespan <= 0.0) {
    return "(empty timeline)\n";
  }
  std::size_t label_width = 0;
  for (const auto& name : resource_names_) {
    label_width = std::max(label_width, name.size());
  }
  for (int r = 0; r < num_resources(); ++r) {
    if (resource_names_[r] == "<barriers>") {
      continue;
    }
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const SimTask& t : tasks_) {
      if (t.resource != r || t.duration <= 0.0) {
        continue;
      }
      int c0 = static_cast<int>(std::floor(t.start / makespan * columns));
      int c1 = static_cast<int>(std::ceil(t.finish / makespan * columns));
      c0 = std::clamp(c0, 0, columns - 1);
      c1 = std::clamp(c1, c0 + 1, columns);
      const char fill = t.category == SimCategory::kLaunch     ? 'l'
                        : t.category == SimCategory::kTransfer ? 't'
                                                               : '#';
      for (int c = c0; c < c1; ++c) {
        row[static_cast<std::size_t>(c)] = fill;
      }
    }
    os << resource_names_[r];
    os << std::string(label_width - resource_names_[r].size() + 1, ' ');
    os << "|" << row << "|\n";
  }
  return os.str();
}

std::string EventSim::ToChromeTraceJson() const {
  KTX_CHECK(has_run_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const SimTask& t : tasks_) {
    if (t.duration <= 0.0) {
      continue;
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"" << t.name << "\",\"ph\":\"X\",\"ts\":" << t.start * 1e6
       << ",\"dur\":" << t.duration * 1e6 << ",\"pid\":0,\"tid\":" << t.resource << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace ktx
