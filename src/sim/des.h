// Discrete-event simulator for heterogeneous execution timelines.
//
// The engine and the baselines emit the task DAG they would execute (CPU MoE
// batches, GPU kernels, launch gaps, PCIe transfers, host callbacks) and the
// DES schedules it: each resource is a serial FIFO lane (a CUDA stream, the
// CPU worker pool treated as one gang, the PCIe link) and every task starts at
//
//   start = max(resource free time, max over deps of dep.finish)
//
// in submission order — exactly the semantics of stream-ordered execution.
// Makespan, per-resource utilization and per-category busy time then fall out,
// which is what Figs. 10-12 and 14 report.

#ifndef KTX_SRC_SIM_DES_H_
#define KTX_SRC_SIM_DES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ktx {

using SimTaskId = std::int64_t;

// Accounting buckets for busy-time breakdowns (Fig. 4: launch overhead share).
enum class SimCategory {
  kCompute = 0,
  kLaunch,
  kTransfer,
  kSync,
  kOther,
};

struct SimTask {
  SimTaskId id = -1;
  int resource = -1;
  std::string name;
  SimCategory category = SimCategory::kCompute;
  double duration = 0.0;
  std::vector<SimTaskId> deps;
  // Filled by Run().
  double start = 0.0;
  double finish = 0.0;
};

class EventSim {
 public:
  // Adds a serial FIFO resource; returns its handle.
  int AddResource(std::string name);

  // Adds a task. Dependencies must already exist (append-only DAG).
  SimTaskId AddTask(int resource, std::string name, double duration_s,
                    std::vector<SimTaskId> deps = {},
                    SimCategory category = SimCategory::kCompute);

  // Convenience: a zero-duration joining node on a virtual resource.
  SimTaskId AddBarrier(std::string name, std::vector<SimTaskId> deps);

  // Schedules all tasks. May be called once; AddTask is invalid afterwards.
  void Run();

  bool has_run() const { return has_run_; }
  double Makespan() const;
  double BusyTime(int resource) const;
  double BusyTime(int resource, SimCategory category) const;
  // Busy time / makespan (or / window if given).
  double Utilization(int resource) const;
  double UtilizationInWindow(int resource, double t0, double t1) const;

  const SimTask& task(SimTaskId id) const { return tasks_[static_cast<std::size_t>(id)]; }
  std::size_t num_tasks() const { return tasks_.size(); }
  const std::string& resource_name(int r) const { return resource_names_[r]; }
  int num_resources() const { return static_cast<int>(resource_names_.size()); }

  // Fixed-width ASCII Gantt rendering, one row per resource ('#' busy).
  std::string AsciiTimeline(int columns = 80) const;

  // Chrome trace-event JSON (load via chrome://tracing or Perfetto).
  std::string ToChromeTraceJson() const;

 private:
  std::vector<std::string> resource_names_;
  std::vector<SimTask> tasks_;
  int barrier_resource_ = -1;
  bool has_run_ = false;
};

}  // namespace ktx

#endif  // KTX_SRC_SIM_DES_H_
