#include "src/sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ktx {

namespace {

// §2.3: decoding one DS-3 MoE layer takes 6.9 ms on one socket and 5.8 ms on
// two sockets when NUMA-oblivious — i.e. adding a socket naively only buys a
// 1.19x bandwidth gain because cross-socket traffic rides the 125 GB/s UPI.
constexpr double kNaiveDualSocketSpeedup = 6.9 / 5.8;

// §3.3: tensor parallelism keeps almost all traffic local; the residual cost
// is the reduce-scatter combine. 0.97 reproduces the reported up-to-1.63x
// gain over the NUMA-oblivious baseline.
constexpr double kTensorParallelEfficiency = 0.97;

// Fraction of DRAM bandwidth each kernel class actually sustains, dominated
// by memory-layout quality (§3.2: oneDNN's layout reaches only a fraction of
// peak; the tile-aware layout streams whole cache lines).
double LayoutBandwidthEfficiency(CpuKernelClass kc) {
  switch (kc) {
    case CpuKernelClass::kKtAmx:
      return 0.93;
    case CpuKernelClass::kKtAvx512:
      return 1.00;  // row-major vector streams prefetch perfectly at m=1
    case CpuKernelClass::kOneDnnAmx:
      return 0.45;
    case CpuKernelClass::kGenericAvx512:
      return 0.55;
    case CpuKernelClass::kLlamaCppAvx512:
      return 0.92;
  }
  return 1.0;
}

// Saturated compute peak per socket in TFLOPS (paper Fig. 3).
double ComputePeakTflops(CpuKernelClass kc, const CpuSpec& cpu) {
  switch (kc) {
    case CpuKernelClass::kKtAmx:
      return cpu.kt_amx_tflops;
    case CpuKernelClass::kKtAvx512:
      return 2.0;  // slightly above the oneDNN AVX path: fused + no dispatch
    case CpuKernelClass::kOneDnnAmx:
      return cpu.onednn_amx_tflops;
    case CpuKernelClass::kGenericAvx512:
      return cpu.avx512_tflops;
    case CpuKernelClass::kLlamaCppAvx512:
      return 1.9;
  }
  return 1.0;
}

bool IsAmx(CpuKernelClass kc) {
  return kc == CpuKernelClass::kKtAmx || kc == CpuKernelClass::kOneDnnAmx;
}

// Small-batch compute ramp for vector kernels: with m rows in flight the FMA
// pipelines are only partially occupied. AMX has no ramp (whole tiles) but
// pads m to the 16-row tile height instead.
double VectorRampFactor(CpuKernelClass kc, std::int64_t m) {
  const double ramp = kc == CpuKernelClass::kKtAvx512 ? 2.0 : 4.0;
  return static_cast<double>(m) / (static_cast<double>(m) + ramp);
}

// Expected max-load when `experts` balls land evenly-at-random into `bins`
// sockets. Used for the expert-parallel imbalance (Fig. 8a: "some sockets
// idle and others saturated").
double ExpectedMaxLoad(int experts, int bins) {
  if (bins <= 1 || experts <= 0) {
    return experts;
  }
  KTX_CHECK_EQ(bins, 2) << "EP imbalance model implemented for 2 sockets";
  // X ~ Binomial(n, 1/2); E[max(X, n-X)].
  const int n = experts;
  double expectation = 0.0;
  double log_half_n = -n * std::log(2.0);
  for (int x = 0; x <= n; ++x) {
    double log_c = std::lgamma(n + 1.0) - std::lgamma(x + 1.0) - std::lgamma(n - x + 1.0);
    const double p = std::exp(log_c + log_half_n);
    expectation += p * std::max(x, n - x);
  }
  return expectation;
}

}  // namespace

double DtypeComputeScale(DType dtype) {
  switch (dtype) {
    case DType::kI8:
    case DType::kI4:
      return 2.0;  // TDPBSSD / VNNI do 2x the MACs of the bf16 paths
    default:
      return 1.0;
  }
}

double EffectiveCpuBandwidthGbs(const CpuSpec& cpu, NumaMode mode, int active_experts) {
  switch (mode) {
    case NumaMode::kSingleSocket:
      return cpu.local_bw_gbs;
    case NumaMode::kNaiveInterleaved:
      return cpu.local_bw_gbs * kNaiveDualSocketSpeedup;
    case NumaMode::kExpertParallel: {
      // The slowest socket gates the layer; it serves ExpectedMaxLoad experts
      // from local memory while the other socket idles early.
      const double max_load = ExpectedMaxLoad(active_experts, cpu.sockets);
      return cpu.local_bw_gbs * static_cast<double>(active_experts) / max_load;
    }
    case NumaMode::kTensorParallel:
      return cpu.local_bw_gbs * cpu.sockets * kTensorParallelEfficiency;
  }
  return cpu.local_bw_gbs;
}

double EffectiveCpuComputeFraction(const CpuSpec& cpu, NumaMode mode, int active_experts) {
  switch (mode) {
    case NumaMode::kSingleSocket:
      return 1.0 / cpu.sockets;
    case NumaMode::kNaiveInterleaved:
      return 1.0;  // all cores compute; memory is the limiter
    case NumaMode::kExpertParallel: {
      const double max_load = ExpectedMaxLoad(active_experts, cpu.sockets);
      return static_cast<double>(active_experts) / (cpu.sockets * max_load);
    }
    case NumaMode::kTensorParallel:
      return 1.0;
  }
  return 1.0;
}

double CpuOpOverheadSeconds(CpuKernelClass kc) {
  switch (kc) {
    case CpuKernelClass::kKtAmx:
      return 8e-6;  // tile config + thread wakeup, amortized by fusion
    case CpuKernelClass::kKtAvx512:
      return 4e-6;
    case CpuKernelClass::kOneDnnAmx:
      return 40e-6;  // oneDNN primitive dispatch
    case CpuKernelClass::kGenericAvx512:
      return 60e-6;  // PyTorch op dispatch per projection
    case CpuKernelClass::kLlamaCppAvx512:
      return 12e-6;  // graph-walker per fused op
  }
  return 0.0;
}

double CpuGemmSeconds(CpuKernelClass kc, std::int64_t m, std::int64_t n, std::int64_t k,
                      DType weight_dtype, const CpuSpec& cpu, double bw_gbs,
                      double compute_fraction) {
  if (m <= 0 || n <= 0 || k <= 0) {
    return 0.0;
  }
  const double weight_bytes =
      static_cast<double>(DTypeBytes(weight_dtype, static_cast<std::size_t>(n * k)));
  const double mem_time = weight_bytes / (bw_gbs * 1e9 * LayoutBandwidthEfficiency(kc));

  // AMX processes full 16-row tiles: a 1-token decode still burns a 16-row
  // tile pass (§3.2, "AMX incurs excessive overhead by processing full
  // tiles"). Vector kernels ramp up with m instead.
  double m_eff = static_cast<double>(m);
  double peak = ComputePeakTflops(kc, cpu) * 1e12 * DtypeComputeScale(weight_dtype);
  if (IsAmx(kc)) {
    m_eff = static_cast<double>(((m + 15) / 16) * 16);
  } else {
    peak *= VectorRampFactor(kc, m);
  }
  const double flops = 2.0 * m_eff * static_cast<double>(n) * static_cast<double>(k);
  const double compute_time = flops / (peak * cpu.sockets * compute_fraction);

  return std::max(mem_time, compute_time);
}

double CpuGemmTflops(CpuKernelClass kc, std::int64_t m, std::int64_t n, std::int64_t k,
                     DType weight_dtype, const CpuSpec& cpu, double bw_gbs,
                     double compute_fraction) {
  const double seconds = CpuGemmSeconds(kc, m, n, k, weight_dtype, cpu, bw_gbs,
                                        compute_fraction) +
                         CpuOpOverheadSeconds(kc);
  // Useful flops exclude AMX tile padding.
  const double useful_flops =
      2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  return useful_flops / seconds / 1e12;
}

double GpuOpSeconds(double flops, double bytes, const GpuSpec& gpu) {
  // 60% of peak compute and 80% of peak bandwidth are typical for tuned
  // attention/GEMM kernels at batch 1..few-thousand tokens.
  constexpr double kComputeEff = 0.6;
  constexpr double kBandwidthEff = 0.8;
  const double compute_time = flops / (gpu.bf16_tflops * 1e12 * kComputeEff);
  const double mem_time = bytes / (gpu.mem_bw_gbs * 1e9 * kBandwidthEff);
  return std::max(compute_time, mem_time);
}

double PcieSeconds(double bytes, const PcieSpec& pcie) {
  return pcie.latency_us * 1e-6 + bytes / (pcie.bw_gbs * 1e9 * pcie.efficiency);
}

double PlacedMoeDecodeSeconds(CpuKernelClass kc, std::int64_t m, std::int64_t activated_experts,
                              std::int64_t hidden, std::int64_t inter, double hit_rate,
                              DType cold_dtype, DType hot_dtype, const CpuSpec& cpu,
                              const GpuSpec& gpu, NumaMode mode) {
  if (m <= 0 || activated_experts <= 0) {
    return 0.0;
  }
  hit_rate = std::clamp(hit_rate, 0.0, 1.0);
  const double cold_experts = (1.0 - hit_rate) * static_cast<double>(activated_experts);
  const double hot_experts = hit_rate * static_cast<double>(activated_experts);

  // Cold half: expert FFNs on the CPU at cold_dtype. Three weight-streaming
  // GEMMs per expert (gate/up [inter, hidden], down [hidden, inter]); the
  // decode regime is memory-bound, so fewer cold bytes translate ~linearly.
  const double bw = EffectiveCpuBandwidthGbs(cpu, mode, static_cast<int>(activated_experts));
  const double cf = EffectiveCpuComputeFraction(cpu, mode, static_cast<int>(activated_experts));
  const double per_cold = CpuGemmSeconds(kc, m, inter, hidden, cold_dtype, cpu, bw, cf) * 2.0 +
                          CpuGemmSeconds(kc, m, hidden, inter, cold_dtype, cpu, bw, cf);
  const double cpu_time = cold_experts * per_cold + CpuOpOverheadSeconds(kc);

  // Hot half: cache-resident experts on the GPU roofline at hot_dtype — also
  // memory-bound at decode widths.
  const double weight_bytes = static_cast<double>(
      DTypeBytes(hot_dtype, static_cast<std::size_t>(3 * inter * hidden)));
  const double flops = 2.0 * 3.0 * static_cast<double>(m) * static_cast<double>(inter) *
                       static_cast<double>(hidden);
  const double gpu_time = hot_experts * GpuOpSeconds(flops, weight_bytes, gpu);

  // The halves overlap inside the asynchronous submit window.
  return std::max(cpu_time, gpu_time);
}

}  // namespace ktx
