// Roofline cost model for CPU/GPU/PCIe operations at paper scale.
//
// Every operation is costed as
//
//   time = max(compute_time, memory_time) + fixed_overhead
//
// with per-kernel-class efficiency parameters calibrated ONLY against numbers
// the paper publishes (Fig. 3 kernel peaks, §2.2/§2.3 bandwidths and NUMA
// measurements, Fig. 4 launch latencies). End-to-end figures are *emergent*
// from these per-op costs plus the scheduling DAG — they are never calibrated
// directly, which is what makes the reproduction meaningful.

#ifndef KTX_SRC_SIM_COST_MODEL_H_
#define KTX_SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/sim/hardware.h"
#include "src/tensor/dtype.h"

namespace ktx {

// CPU kernel implementations whose performance envelopes differ (paper Fig. 3
// and §6.4 breakdown).
enum class CpuKernelClass {
  kKtAmx,          // this work: tile-layout AMX kernel (21.3 TFLOPS peak)
  kKtAvx512,       // this work: AVX-512 kernel on the AMX-compatible layout
  kOneDnnAmx,      // PyTorch + oneDNN AMX path (5.4 TFLOPS, poor layout)
  kGenericAvx512,  // PyTorch AVX-512 path (Fiddler's backend)
  kLlamaCppAvx512, // llama.cpp fused AVX-512 kernels
};

// How expert weights are placed across sockets (paper §3.3, Fig. 8).
enum class NumaMode {
  kSingleSocket,      // use one socket only
  kNaiveInterleaved,  // NUMA-oblivious: pages interleaved, heavy UPI traffic
  kExpertParallel,    // whole experts pinned per socket (cloud-style EP)
  kTensorParallel,    // this work: every expert sharded across sockets
};

// Effective aggregate DRAM bandwidth (GB/s = 1e9 B/s) the MoE kernels see
// under a NUMA mode. `active_experts` matters for EP load balance.
double EffectiveCpuBandwidthGbs(const CpuSpec& cpu, NumaMode mode, int active_experts);

// Fraction of the machine's compute the mode can use (EP imbalance shows up
// here too; TP/naive use both sockets).
double EffectiveCpuComputeFraction(const CpuSpec& cpu, NumaMode mode, int active_experts);

// Time for one grouped expert GEMM: `m` tokens routed to this expert,
// weight matrix [n, k] of `weight_dtype`. `bw_gbs` is the bandwidth share this
// op gets (from EffectiveCpuBandwidthGbs, possibly divided among concurrent
// ops); `compute_fraction` likewise for compute.
double CpuGemmSeconds(CpuKernelClass kc, std::int64_t m, std::int64_t n, std::int64_t k,
                      DType weight_dtype, const CpuSpec& cpu, double bw_gbs,
                      double compute_fraction);

// Fixed per-operator overhead (threading, framework dispatch) in seconds.
double CpuOpOverheadSeconds(CpuKernelClass kc);

// Achieved TFLOPS for the Fig. 3 / Fig. 7 microbenchmarks.
double CpuGemmTflops(CpuKernelClass kc, std::int64_t m, std::int64_t n, std::int64_t k,
                     DType weight_dtype, const CpuSpec& cpu, double bw_gbs,
                     double compute_fraction);

// Generic GPU op under the GPU roofline.
double GpuOpSeconds(double flops, double bytes, const GpuSpec& gpu);

// Host<->device transfer over PCIe.
double PcieSeconds(double bytes, const PcieSpec& pcie);

// Placement-policy hook for the hotness-aware expert cache (core/
// expert_cache.h): decode-time cost of one MoE layer's routed experts when a
// `hit_rate` fraction of the activated expert FFNs is served from the
// GPU-resident cache (at `hot_dtype`) and the rest stream CPU-side weights at
// `cold_dtype`. Each expert FFN is three [inter, hidden]-class GEMMs over
// `m` tokens. The CPU and GPU halves overlap (the cache serve happens inside
// the asynchronous submit window), so the layer costs the slower of the two —
// this is the objective a placement policy minimizes when trading cache
// capacity against quantization error.
double PlacedMoeDecodeSeconds(CpuKernelClass kc, std::int64_t m, std::int64_t activated_experts,
                              std::int64_t hidden, std::int64_t inter, double hit_rate,
                              DType cold_dtype, DType hot_dtype, const CpuSpec& cpu,
                              const GpuSpec& gpu, NumaMode mode);

// Compute-peak multiplier for integer dtypes (AMX/VNNI int8 paths double
// throughput; int4 unpacks to int8 before the MAC).
double DtypeComputeScale(DType dtype);

}  // namespace ktx

#endif  // KTX_SRC_SIM_COST_MODEL_H_
