// Hardware descriptions for the performance model.
//
// All constants derive from the paper's §6.1 testbed and its published
// measurements, not from this machine:
//   * dual-socket Intel Xeon Platinum 8452Y, 36 cores/socket,
//     220 GB/s intra-socket DRAM bandwidth, 125 GB/s cross-socket (Intel MLC),
//     AMX theoretical peak 73.7 TFLOPS (§2.2);
//   * measured kernel peaks (Fig. 3): KTransformers AMX 21.3 TFLOPS/socket,
//     PyTorch/oneDNN AMX 5.4 TFLOPS, AVX-512 1.8 TFLOPS;
//   * NVIDIA A100-40GB and RTX 4080-16GB on PCIe 4.0 x16 (32 GB/s);
//   * kernel-launch latencies (Fig. 4): 16 us via PyTorch (Fiddler),
//     5 us via C++ (llama.cpp), and near-zero inside a CUDA graph.

#ifndef KTX_SRC_SIM_HARDWARE_H_
#define KTX_SRC_SIM_HARDWARE_H_

#include <string>

namespace ktx {

struct CpuSpec {
  std::string name;
  int sockets = 2;
  int cores_per_socket = 36;
  // Memory system (GB/s = 1e9 bytes/s).
  double local_bw_gbs = 220.0;   // intra-socket DRAM streams
  double remote_bw_gbs = 125.0;  // cross-socket (UPI) streams
  // Measured kernel compute peaks, per socket (TFLOPS = 1e12 flop/s).
  double amx_theoretical_tflops = 73.7;
  double kt_amx_tflops = 21.3;    // this work, Fig. 3
  double onednn_amx_tflops = 5.4; // PyTorch + oneDNN, Fig. 3
  double avx512_tflops = 1.8;     // Fig. 3
};

struct GpuSpec {
  std::string name;
  double bf16_tflops = 312.0;
  double mem_bw_gbs = 1555.0;
  double vram_gb = 40.0;
};

struct PcieSpec {
  double bw_gbs = 32.0;      // PCIe 4.0 x16 theoretical peak
  double efficiency = 0.8;   // achievable fraction for medium transfers
  double latency_us = 8.0;   // per-transfer fixed cost
};

// Per-strategy host->GPU kernel-launch behaviour (Fig. 4).
struct LaunchSpec {
  double per_launch_us = 5.0;  // serial occupancy of the GPU front-end
  bool graphs = false;         // true: whole decode step replays as one graph
  double graph_replay_us = 3.0;  // one-time cost to replay the captured graph
};

struct MachineSpec {
  CpuSpec cpu;
  GpuSpec gpu;
  PcieSpec pcie;
};

// The paper's testbed presets.
CpuSpec Xeon8452Y();
GpuSpec A100_40GB();
GpuSpec RTX4080_16GB();
MachineSpec PaperTestbedA100();
MachineSpec PaperTestbed4080();

}  // namespace ktx

#endif  // KTX_SRC_SIM_HARDWARE_H_
